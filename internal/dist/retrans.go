package dist

import (
	"fmt"
	"slices"

	"repro/internal/graph"
)

// This file implements the retransmitting variant of full-information
// flooding: the graceful-degradation answer to message drops. The plain
// floodProtocol is round-counted — it trusts that every broadcast
// arrives, so a single dropped batch silently truncates a ball. The
// retransmitting protocol instead tracks, per neighbor, the set of
// records it owes that neighbor and keeps resending them every round
// until the neighbor acknowledges each record; a node is Done exactly
// when it owes nothing. Records carry their hop distance and are
// accepted Bellman-Ford style (keep the smaller), so duplicated and
// reordered deliveries are absorbed, and the final Knowledge is
// identical to the fault-free flood's — the price of drops is paid in
// extra rounds and messages, which CollectBallsRetrans reports.

// retransRec is one disseminated record: a node's info plus the hop
// distance the receiver would know it at.
type retransRec struct {
	Info NodeInfo
	Hops int32
}

// retransBatch is the data message: every record the sender currently
// owes the receiver. Its payload size is its record count, like
// infoBatch.
type retransBatch struct {
	Recs []retransRec
}

// PayloadSize implements Sizer.
func (b *retransBatch) PayloadSize() int { return len(b.Recs) }

// retransAck acknowledges the records of one received batch: Nodes[i]
// is known to the acking node at Hops[i]. Parallel slices rather than a
// map so the payload has a deterministic order.
type retransAck struct {
	Nodes []graph.ID
	Hops  []int32
}

// PayloadSize implements Sizer.
func (a *retransAck) PayloadSize() int { return len(a.Nodes) }

// retransQueue is the per-neighbor obligation set. order records every
// node ID ever enqueued, in first-enqueue order; pending marks which of
// them are currently owed. Retransmission walks order, so the batch
// layout is a deterministic function of the protocol history alone.
type retransQueue struct {
	order   []graph.ID
	pending map[graph.ID]bool
	count   int
}

type retransProtocol struct {
	v      graph.ID
	ix     *graph.Indexed
	radius int
	nbrs   []graph.ID
	nbrPos map[graph.ID]int

	best map[graph.ID]int32
	info map[graph.ID]NodeInfo

	queues       []retransQueue
	pendingCount int
}

func newRetransProtocol(v graph.ID, idx int, ix *graph.Indexed, note any, radius int) *retransProtocol {
	adj := ix.NeighborIDs(idx)
	p := &retransProtocol{
		v:      v,
		ix:     ix,
		radius: radius,
		nbrs:   adj,
		nbrPos: make(map[graph.ID]int, len(adj)),
		best:   map[graph.ID]int32{v: 0},
		info:   map[graph.ID]NodeInfo{v: {Node: v, Adj: adj, Note: note, idx: int32(idx)}},
		queues: make([]retransQueue, len(adj)),
	}
	for i, u := range adj {
		p.nbrPos[u] = i
		p.queues[i].pending = make(map[graph.ID]bool)
	}
	return p
}

// enqueueExcept marks id as owed to every neighbor but the one the
// record just arrived from: that neighbor offered it, so it already
// knows id at a hop count at most ours.
func (p *retransProtocol) enqueueExcept(from graph.ID, id graph.ID) {
	for i := range p.queues {
		if p.nbrs[i] == from {
			continue
		}
		q := &p.queues[i]
		if !q.pending[id] {
			if _, seen := q.pending[id]; !seen {
				q.order = append(q.order, id)
			}
			q.pending[id] = true
			q.count++
			p.pendingCount++
		}
	}
}

func (p *retransProtocol) Init(ctx *Context) {
	if p.radius > 0 {
		for i := range p.queues {
			q := &p.queues[i]
			q.order = append(q.order, p.v)
			q.pending[p.v] = true
			q.count++
			p.pendingCount++
		}
	}
	p.retransmit(ctx)
}

func (p *retransProtocol) Round(ctx *Context, inbox []Message) {
	for _, m := range inbox {
		switch pl := m.Payload.(type) {
		case *retransBatch:
			ack := &retransAck{
				Nodes: make([]graph.ID, 0, len(pl.Recs)),
				Hops:  make([]int32, 0, len(pl.Recs)),
			}
			for _, rec := range pl.Recs {
				id := rec.Info.Node
				if cur, known := p.best[id]; !known || rec.Hops < cur {
					p.best[id] = rec.Hops
					p.info[id] = rec.Info
					if int(rec.Hops) < p.radius {
						p.enqueueExcept(m.From, id)
					}
				}
				// Always ack, even duplicates: the previous ack may
				// itself have been dropped.
				ack.Nodes = append(ack.Nodes, id)
				ack.Hops = append(ack.Hops, p.best[id])
			}
			ctx.Send(m.From, ack)
		case *retransAck:
			q := &p.queues[p.nbrPos[m.From]]
			for i, id := range pl.Nodes {
				// The obligation is met once the neighbor knows id at
				// least as well as we could tell it. A stale ack (we
				// have since found a shorter path) keeps the record
				// pending.
				if q.pending[id] && pl.Hops[i] <= p.best[id]+1 {
					q.pending[id] = false
					q.count--
					p.pendingCount--
				}
			}
		}
	}
	p.retransmit(ctx)
}

// retransmit resends every currently-owed record to each neighbor. The
// protocol retries every round rather than waiting out the two-round ack
// latency: the redundancy costs messages, never correctness, and keeps
// the worst-case round overhead at the ack round-trip.
func (p *retransProtocol) retransmit(ctx *Context) {
	for i, u := range p.nbrs {
		q := &p.queues[i]
		if q.count == 0 {
			continue
		}
		batch := &retransBatch{Recs: make([]retransRec, 0, q.count)}
		for _, id := range q.order {
			if q.pending[id] {
				batch.Recs = append(batch.Recs, retransRec{Info: p.info[id], Hops: p.best[id] + 1})
			}
		}
		ctx.Send(u, batch)
	}
}

// Done flips back to false when a new record arrives and creates fresh
// obligations; the run ends only when every node simultaneously owes
// nothing.
func (p *retransProtocol) Done() bool { return p.pendingCount == 0 }

// Output rebuilds a Knowledge equivalent to the fault-free flood's: the
// record slice sorted by (hops, id) restores the nondecreasing-distance
// invariant FilteredBallGraph relies on, with the center first.
func (p *retransProtocol) Output() any {
	ids := make([]graph.ID, 0, len(p.best))
	for id := range p.best {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, func(a, b graph.ID) int {
		da, db := p.best[a], p.best[b]
		if da != db {
			return int(da - db)
		}
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
		return 0
	})
	k := &Knowledge{
		Center: p.v,
		Radius: p.radius,
		recs:   make([]NodeInfo, 0, len(ids)),
		dist:   make([]int32, 0, len(ids)),
		// Every record originated in an index-carrying self record, so
		// the rebuilt knowledge is index-ready too (no dedup bitmap,
		// though: CoversComponent takes the position-map path).
		snap: p.ix,
	}
	for _, id := range ids {
		k.recs = append(k.recs, p.info[id])
		k.dist = append(k.dist, p.best[id])
		if int(p.best[id]) > k.maxDist {
			k.maxDist = int(p.best[id])
		}
	}
	return k
}

// CollectBallsRetrans runs the retransmitting flood for at most budget
// rounds on g under the given fault schedule (nil = fault-free) and
// returns each node's Knowledge plus the engine result; Result.Rounds
// tells the caller how many rounds tolerating the faults cost (the
// fault-free protocol pays radius + 2: the last-hop records still need
// their ack round-trip). A budget too small for the drop rate surfaces
// as the engine's did-not-terminate error, not as silently truncated
// balls.
func CollectBallsRetrans(g *graph.Graph, radius, budget int, notes map[graph.ID]any, f *Faults, o RoundObserver) (map[graph.ID]*Knowledge, *Result, error) {
	ix := graph.NewIndexed(g)
	eng := NewEngineIndexed(ix, func(v graph.ID) Protocol {
		i, _ := ix.IndexOf(v)
		return newRetransProtocol(v, i, ix, notes[v], radius)
	})
	eng.Observer = o
	eng.Faults = f
	res, err := eng.Run(budget)
	if err != nil {
		return nil, nil, fmt.Errorf("retransmitting flood: %w", err)
	}
	out := make(map[graph.ID]*Knowledge, len(res.Outputs))
	for v, o := range res.Outputs {
		out[v] = o.(*Knowledge)
	}
	return out, res, nil
}
