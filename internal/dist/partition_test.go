package dist

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// These tests pin the partitioned runtime's headline property: a
// partitioned run is observationally identical to a LOCAL engine run —
// same outputs, same Result counters, same RoundStats and FaultStats
// streams — for every shard count, fault-free and under fault plans.
// The LocalLink transport is used so the comparison isolates the
// runtime's ordering and codec semantics from the wire (internal/wire
// has its own tests, and the cross-check suite in internal/core runs
// real child processes).

// partRecorder extends recordingObserver with the FaultObserver and
// WireObserver extensions, capturing everything a partitioned run can
// report.
type partRecorder struct {
	recordingObserver
	faults    []FaultStats
	wireCalls int
}

func (f *partRecorder) FaultRound(fs FaultStats) {
	f.faults = append(f.faults, fs)
}

func (f *partRecorder) WireRound(round int, in, out int64) {
	f.wireCalls++
}

func newPartRecorder() *partRecorder {
	r := &partRecorder{}
	r.shardStarts = make(map[int]int)
	r.shardEnds = make(map[int]int)
	return r
}

// sameKnowledge requires a and b to agree on every observable field:
// identity, record sequence (order matters — downstream ball decoding
// walks records in discovery order), distances, notes, and index-space
// membership.
func samePartKnowledge(t *testing.T, at string, a, b *Knowledge) {
	t.Helper()
	if a.Center != b.Center || a.Radius != b.Radius || a.maxDist != b.maxDist {
		t.Fatalf("%s: knowledge header (%d, %d, %d) != (%d, %d, %d)",
			at, a.Center, a.Radius, a.maxDist, b.Center, b.Radius, b.maxDist)
	}
	if len(a.recs) != len(b.recs) {
		t.Fatalf("%s: %d records != %d records", at, len(a.recs), len(b.recs))
	}
	for i := range a.recs {
		ra, rb := a.recs[i], b.recs[i]
		if ra.Node != rb.Node || ra.idx != rb.idx || a.dist[i] != b.dist[i] {
			t.Fatalf("%s: record %d (%d@%d idx %d) != (%d@%d idx %d)",
				at, i, ra.Node, a.dist[i], ra.idx, rb.Node, b.dist[i], rb.idx)
		}
		if !reflect.DeepEqual(ra.Note, rb.Note) {
			t.Fatalf("%s: record %d note %v != %v", at, i, ra.Note, rb.Note)
		}
		if !reflect.DeepEqual(ra.Adj, rb.Adj) {
			t.Fatalf("%s: record %d adjacency diverges", at, i)
		}
	}
	n := int32(a.snap.NumNodes())
	for i := int32(0); i < n; i++ {
		if a.KnownIdx(i) != b.KnownIdx(i) {
			t.Fatalf("%s: KnownIdx(%d) %v != %v", at, i, a.KnownIdx(i), b.KnownIdx(i))
		}
	}
	if a.CoversComponent() != b.CoversComponent() {
		t.Fatalf("%s: CoversComponent %v != %v", at, a.CoversComponent(), b.CoversComponent())
	}
}

func sameResult(t *testing.T, at string, a, b *Result) {
	t.Helper()
	if a.Rounds != b.Rounds || a.Messages != b.Messages || a.Volume != b.Volume {
		t.Fatalf("%s: result (rounds %d, msgs %d, vol %d) != (rounds %d, msgs %d, vol %d)",
			at, a.Rounds, a.Messages, a.Volume, b.Rounds, b.Messages, b.Volume)
	}
	if a.Dropped != b.Dropped || a.Duplicated != b.Duplicated ||
		a.DeadLetters != b.DeadLetters || a.Stall != b.Stall {
		t.Fatalf("%s: fault counters (%d, %d, %d, %d) != (%d, %d, %d, %d)", at,
			a.Dropped, a.Duplicated, a.DeadLetters, a.Stall,
			b.Dropped, b.Duplicated, b.DeadLetters, b.Stall)
	}
}

func testNotes(ix *graph.Indexed) []any {
	notes := make([]any, ix.NumNodes())
	for i := range notes {
		if i%3 == 0 {
			notes[i] = i * 7
		}
	}
	return notes
}

func TestPartitionedFloodMatchesLocal(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"chordal": gen.RandomChordal(120, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 11),
		"path":    gen.Path(40),
	}
	for name, g := range graphs {
		ix := graph.NewIndexed(g)
		notes := testNotes(ix)
		for _, radius := range []int{0, 1, 4} {
			lObs := newPartRecorder()
			lKs, lRes, err := CollectBallsByIndex(ix, radius, notes, lObs, nil)
			if err != nil {
				t.Fatalf("%s r=%d: local flood: %v", name, radius, err)
			}
			for _, parts := range []int{1, 2, 3, 5} {
				pObs := newPartRecorder()
				part := NewLocalPartition(ix, parts)
				pKs, pRes, err := CollectBallsByIndexPart(part, ix, radius, notes, pObs, nil)
				if err != nil {
					t.Fatalf("%s r=%d p=%d: partitioned flood: %v", name, radius, parts, err)
				}
				at := fmt.Sprintf("%s/r%d/parts%d", name, radius, parts)
				sameResult(t, at, lRes, pRes)
				for i := range lKs {
					samePartKnowledge(t, at, lKs[i], pKs[i])
				}
				if !reflect.DeepEqual(scheduleFree(lObs.rounds), scheduleFree(pObs.rounds)) {
					t.Fatalf("%s: round stats diverge:\nlocal: %+v\npart:  %+v",
						at, lObs.rounds, pObs.rounds)
				}
				if lObs.runNodes != pObs.runNodes || lObs.runEdges != pObs.runEdges {
					t.Fatalf("%s: RunStart (%d, %d) != (%d, %d)",
						at, lObs.runNodes, lObs.runEdges, pObs.runNodes, pObs.runEdges)
				}
				if !reflect.DeepEqual(lObs.runEnds, pObs.runEnds) {
					t.Fatalf("%s: RunEnd %v != %v", at, lObs.runEnds, pObs.runEnds)
				}
				if pObs.wireCalls != 0 {
					t.Fatalf("%s: LocalLink partition fired %d WireRound calls, want 0", at, pObs.wireCalls)
				}
			}
		}
	}
}

func TestPartitionedFloodFaultyMatchesLocal(t *testing.T) {
	g := gen.RandomChordal(100, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 17)
	ix := graph.NewIndexed(g)
	for _, spec := range []string{
		"drop=0.2",
		"dup=0.3",
		"delay=2,dup=0.1",
		"drop=0.15,dup=0.1,delay=1",
	} {
		f, err := ParseFaults(spec, 41)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		lObs := newPartRecorder()
		lKs, lRes, err := CollectBallsByIndex(ix, 3, nil, lObs, f)
		if err != nil {
			t.Fatalf("%q: local flood: %v", spec, err)
		}
		for _, parts := range []int{2, 4} {
			pf, err := ParseFaults(spec, 41)
			if err != nil {
				t.Fatalf("%q: %v", spec, err)
			}
			pObs := newPartRecorder()
			part := NewLocalPartition(ix, parts)
			pKs, pRes, err := CollectBallsByIndexPart(part, ix, 3, nil, pObs, pf)
			if err != nil {
				t.Fatalf("%q p=%d: partitioned flood: %v", spec, parts, err)
			}
			sameResult(t, spec, lRes, pRes)
			for i := range lKs {
				samePartKnowledge(t, spec, lKs[i], pKs[i])
			}
			if !reflect.DeepEqual(lObs.faults, pObs.faults) {
				t.Fatalf("%q p=%d: fault stats diverge:\nlocal: %+v\npart:  %+v",
					spec, parts, lObs.faults, pObs.faults)
			}
			if !reflect.DeepEqual(scheduleFree(lObs.rounds), scheduleFree(pObs.rounds)) {
				t.Fatalf("%q p=%d: round stats diverge", spec, parts)
			}
		}
	}
}

func TestPartitionedCrashBlockedMatchesLocal(t *testing.T) {
	g := gen.Path(20)
	ix := graph.NewIndexed(g)
	crashed := ix.IDOf(7)
	spec := fmt.Sprintf("crash=%d@1", crashed)
	f, err := ParseFaults(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, _, lErr := CollectBallsByIndex(ix, 3, nil, nil, f)
	if lErr == nil {
		t.Fatal("local flood survived a crashed node")
	}
	pf, err := ParseFaults(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	part := NewLocalPartition(ix, 3)
	_, _, pErr := CollectBallsByIndexPart(part, ix, 3, nil, nil, pf)
	if pErr == nil {
		t.Fatal("partitioned flood survived a crashed node")
	}
	if lErr.Error() != pErr.Error() {
		t.Fatalf("crash-blocked errors diverge:\nlocal: %v\npart:  %v", lErr, pErr)
	}
	if !strings.Contains(pErr.Error(), "crashed at round 1 and cannot finish") {
		t.Fatalf("unexpected crash-blocked error: %v", pErr)
	}
}

func TestPartitionedRetransMatchesLocal(t *testing.T) {
	g := gen.RandomChordal(80, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 23)
	ix := graph.NewIndexed(g)
	const radius, budget = 3, 200
	for _, spec := range []string{"", "drop=0.2"} {
		var f, pf *Faults
		var err error
		if spec != "" {
			if f, err = ParseFaults(spec, 13); err != nil {
				t.Fatal(err)
			}
			if pf, err = ParseFaults(spec, 13); err != nil {
				t.Fatal(err)
			}
		}
		lKsMap, lRes, err := CollectBallsRetrans(g, radius, budget, nil, f, nil)
		if err != nil {
			t.Fatalf("%q: local retrans: %v", spec, err)
		}
		part := NewLocalPartition(ix, 4)
		pKs, pRes, err := CollectBallsRetransPart(part, ix, radius, budget, nil, nil, pf)
		if err != nil {
			t.Fatalf("%q: partitioned retrans: %v", spec, err)
		}
		sameResult(t, spec, lRes, pRes)
		for i, v := range ix.IDs() {
			samePartKnowledge(t, spec, lKsMap[v], pKs[i])
		}
	}
}

func TestPartitionedRejectsHandBuiltFaults(t *testing.T) {
	ix := graph.NewIndexed(gen.Path(10))
	part := NewLocalPartition(ix, 2)
	f := &Faults{Crash: map[graph.ID]int{ix.IDOf(0): 1}} // no Spec
	_, _, err := CollectBallsByIndexPart(part, ix, 2, nil, nil, f)
	if err == nil || !strings.Contains(err.Error(), "ParseFaults-built") {
		t.Fatalf("hand-built Faults accepted: %v", err)
	}
}

func TestPartitionedRunTwice(t *testing.T) {
	ix := graph.NewIndexed(gen.Path(10))
	part := NewLocalPartition(ix, 2)
	params, err := encodeFloodParams(ix.NumNodes(), 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(ix, part, "flood", params)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(2); err == nil || !strings.Contains(err.Error(), "called twice") {
		t.Fatalf("second Run: %v", err)
	}
}

func TestSplitRange(t *testing.T) {
	cases := []struct {
		n, parts int
		want     []PartRange
	}{
		{10, 3, []PartRange{{0, 4}, {4, 7}, {7, 10}}},
		{4, 4, []PartRange{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
		{3, 8, []PartRange{{0, 1}, {1, 2}, {2, 3}}},
		{5, 1, []PartRange{{0, 5}}},
		{5, 0, []PartRange{{0, 5}}},
	}
	for _, c := range cases {
		got := SplitRange(c.n, c.parts)
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("SplitRange(%d, %d) = %v, want %v", c.n, c.parts, got, c.want)
		}
	}
}

func TestShardRunnerDeliverBeforeStep(t *testing.T) {
	ix := graph.NewIndexed(gen.Path(6))
	params, err := encodeFloodParams(ix.NumNodes(), 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewShardRunner(ix, ShardConfig{Lo: 0, Hi: 3, Program: "flood", Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Deliver(nil); err == nil || !strings.Contains(err.Error(), "without a preceding Step") {
		t.Fatalf("Deliver before Step: %v", err)
	}
}
