package dist

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// withMode runs fn with DefaultMode temporarily set to m.
func withMode(t *testing.T, m ExecMode, fn func()) {
	t.Helper()
	old := DefaultMode
	DefaultMode = m
	defer func() { DefaultMode = old }()
	fn()
}

// floodFingerprint captures everything observable about a flood run: the
// engine counters and, per node, the exact record sequence (node, dist)
// the flood produced. Record order is part of the determinism contract —
// it is what downstream map-free iteration sees.
type floodFingerprint struct {
	rounds, messages, volume int
	recs                     map[graph.ID][]NodeInfo
	dists                    map[graph.ID][]int32
}

func floodRun(t *testing.T, g *graph.Graph, radius int) floodFingerprint {
	t.Helper()
	know, res, err := CollectBallsStats(g, radius, nil)
	if err != nil {
		t.Fatal(err)
	}
	fp := floodFingerprint{
		rounds:   res.Rounds,
		messages: res.Messages,
		volume:   res.Volume,
		recs:     make(map[graph.ID][]NodeInfo, len(know)),
		dists:    make(map[graph.ID][]int32, len(know)),
	}
	for v, k := range know {
		fp.recs[v] = k.recs
		fp.dists[v] = k.dist
	}
	return fp
}

func compareFloodRuns(t *testing.T, name string, want, got floodFingerprint) {
	t.Helper()
	if want.rounds != got.rounds || want.messages != got.messages || want.volume != got.volume {
		t.Fatalf("%s: result mismatch: (rounds,messages,volume) = (%d,%d,%d), want (%d,%d,%d)",
			name, got.rounds, got.messages, got.volume, want.rounds, want.messages, want.volume)
	}
	if len(want.recs) != len(got.recs) {
		t.Fatalf("%s: %d outputs, want %d", name, len(got.recs), len(want.recs))
	}
	for v, wr := range want.recs {
		gr := got.recs[v]
		if len(wr) != len(gr) {
			t.Fatalf("%s node %d: %d records, want %d", name, v, len(gr), len(wr))
		}
		for i := range wr {
			if wr[i].Node != gr[i].Node || want.dists[v][i] != got.dists[v][i] {
				t.Fatalf("%s node %d record %d: (%d,d=%d), want (%d,d=%d)",
					name, v, i, gr[i].Node, got.dists[v][i], wr[i].Node, want.dists[v][i])
			}
		}
	}
}

// TestFloodDeterministicAcrossModes checks the central engine guarantee:
// the pooled, per-node-goroutine, and sequential schedules produce
// bit-for-bit identical results — same counters, same per-node record
// sequences — on an E4/E6-style chordal workload.
func TestFloodDeterministicAcrossModes(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"chordal": gen.RandomChordal(200, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 11),
		"ktree":   gen.KTree(150, 3, 5),
		"path":    gen.Path(64),
	}
	for name, g := range graphs {
		for _, radius := range []int{1, 3, 6} {
			var ref floodFingerprint
			withMode(t, ModeSequential, func() { ref = floodRun(t, g, radius) })
			for _, m := range []ExecMode{ModePooled, ModePerNode} {
				var got floodFingerprint
				withMode(t, m, func() { got = floodRun(t, g, radius) })
				compareFloodRuns(t, name, ref, got)
			}
		}
	}
}

// TestFloodDedupModesAgree checks that the bitmap dedup (small n) and
// the sparse-set dedup (large n) paths produce identical knowledge. The
// n threshold is a compile-time constant, so the large-n path is forced
// by hand: detach the bitmap and seed the sparse index set exactly as
// newFloodProtocol does above seenBitmapMaxN.
func TestFloodDedupModesAgree(t *testing.T) {
	g := gen.RandomChordal(120, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 3)
	ix := graph.NewIndexed(g)
	radius := 4
	run := func(forceMap bool) floodFingerprint {
		eng := NewEngineIndexed(ix, func(v graph.ID) Protocol {
			i, _ := ix.IndexOf(v)
			p := newFloodProtocol(v, i, ix, nil, radius, 8)
			if forceMap {
				// Disable the bitmap so dedup falls back to the sparse
				// index set, as it would for n > seenBitmapMaxN.
				p.seen = nil
				p.know.seen = nil
				p.know.known.Add(int32(i))
			}
			return p
		})
		res, err := eng.Run(radius + 1)
		if err != nil {
			t.Fatal(err)
		}
		fp := floodFingerprint{
			rounds: res.Rounds, messages: res.Messages, volume: res.Volume,
			recs:  make(map[graph.ID][]NodeInfo),
			dists: make(map[graph.ID][]int32),
		}
		for v, o := range res.Outputs {
			k := o.(*Knowledge)
			fp.recs[v] = k.recs
			fp.dists[v] = k.dist
		}
		return fp
	}
	compareFloodRuns(t, "bitmap-vs-map", run(false), run(true))
}

// countingProtocol is a tiny stress protocol: every node broadcasts its
// ID for a fixed number of rounds and sums what it hears. It exists to
// stress the engine's inbox reuse and pooled scheduling under -race with
// a payload cheap enough for many rounds.
type countingProtocol struct {
	rounds, limit int
	sum           int64
}

func (p *countingProtocol) Init(ctx *Context) { ctx.Broadcast(int64(ctx.ID())) }
func (p *countingProtocol) Round(ctx *Context, inbox []Message) {
	if p.rounds >= p.limit {
		return
	}
	p.rounds++
	for _, m := range inbox {
		p.sum += m.Payload.(int64)
	}
	if p.rounds < p.limit {
		ctx.Broadcast(int64(ctx.ID()))
	}
}
func (p *countingProtocol) Done() bool  { return p.rounds >= p.limit }
func (p *countingProtocol) Output() any { return p.sum }

// TestEngineStressAllModes drives all three schedules over several
// graphs; run with -race this doubles as the engine's data-race gate.
func TestEngineStressAllModes(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Cycle(97),
		gen.Star(50),
		gen.RandomChordal(80, gen.ChordalOpts{MaxCliqueSize: 5, AttachFull: 0.6}, 1),
	}
	for gi, g := range graphs {
		var ref map[graph.ID]any
		for _, m := range []ExecMode{ModeSequential, ModePooled, ModePerNode} {
			eng := NewEngine(g, func(v graph.ID) Protocol {
				return &countingProtocol{limit: 8}
			})
			eng.Mode = m
			res, err := eng.Run(10)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res.Outputs
				continue
			}
			for v, want := range ref {
				if res.Outputs[v] != want {
					t.Fatalf("graph %d mode %d node %d: output %v, want %v",
						gi, m, v, res.Outputs[v], want)
				}
			}
		}
	}
}
