package dist

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
)

// This file defines the partitioned runtime's transport abstraction: the
// engine's nodes are split into contiguous snapshot-index ranges, each
// range is hosted by a ShardRunner (in-process or in a child OS process
// behind internal/wire), and a coordinator (coordinator.go) drives the
// same round/observer/faults contracts as Engine.Run over ShardLinks.
//
// Determinism is preserved by construction. The LOCAL engine delivers
// each inbox sorted by (sender index, queue position), achieved by
// walking senders in index order. Here every shard routes its own
// senders in index order, the coordinator concatenates the per-shard
// message blocks in shard order (shards are contiguous ascending
// ranges, so shard order IS sender-index order), and the receiving
// shard splices its own locally-staged block between the lower- and
// higher-shard blocks. Fault schedules are decided sender-side with
// global (round, sender index, queue position) coordinates — the same
// pure function the LOCAL engine consults — so a partitioned run
// produces byte-identical outputs, fault counters, and round stats.

// PartMsg is one message copy crossing a shard boundary: global sender
// and receiver snapshot indices plus the program-encoded payload.
// Duplicated copies appear as adjacent entries, exactly as the LOCAL
// engine appends them.
type PartMsg struct {
	From int32
	To   int32
	Data []byte
}

// ShardConfig configures one program run on a shard: the shard's node
// range, the registered program to instantiate, its opaque parameters,
// and the fault schedule as the (spec, seed) pair it is a pure function
// of — each side re-parses locally, so no schedule state crosses the
// wire.
type ShardConfig struct {
	Lo, Hi    int32
	Program   string
	Params    []byte
	FaultSpec string
	FaultSeed uint64
	MaxRounds int
}

// ShardStepResult is what a shard reports after executing one step: its
// local termination state, the step's sender-side accounting (every
// delivered copy is counted by its sender, so coordinator sums equal
// the LOCAL engine's counters), and the remote-bound messages in sender
// order.
type ShardStepResult struct {
	Round int
	// Done is the shard's count of nodes whose protocol reports Done.
	Done int
	// DeadNotDone counts crashed-but-unfinished local nodes; BlockedIdx
	// is the smallest such global index (-1 when none) and BlockedRound
	// its crash round — the coordinator's crash-blocked diagnosis.
	DeadNotDone  int
	BlockedIdx   int32
	BlockedRound int
	// Sender-side delivery accounting for this step.
	Messages    int
	Volume      int
	Dropped     int
	Duplicated  int
	DeadLetters int
	Stall       int
	// Msgs are the copies addressed outside [Lo, Hi), in sender order.
	Msgs []PartMsg
	// Err carries a node-program panic ("dist: node program panicked:
	// ..."), formatted exactly like the LOCAL engine's failure.
	Err string
}

// ShardLink is the coordinator's handle on one shard. Begin/await pairs
// are split so a TCP transport pipelines: the coordinator broadcasts
// Step to every shard before awaiting any result. Methods are called
// from the single goroutine driving the coordinator, in a fixed
// sequence per round: Step*, StepResult*, Deliver*, DeliverResult*.
type ShardLink interface {
	// Start configures a fresh program run on the shard. A link is
	// reused across runs (the pruning phase floods once per iteration);
	// Start resets all run state.
	Start(cfg ShardConfig) error
	// Step begins step round (0 = Init) on the shard.
	Step(round int) error
	// StepResult awaits the result of the step begun by Step.
	StepResult() (*ShardStepResult, error)
	// Deliver hands the shard the remote copies addressed to it, in
	// global sender order, for splicing with its locally staged block.
	Deliver(round int, msgs []PartMsg) error
	// DeliverResult awaits the delivery ack and returns the shard's
	// post-delivery inbox high-water mark.
	DeliverResult() (maxInbox int, err error)
	// Outputs returns the program-encoded output of each local node,
	// by local offset.
	Outputs() ([][]byte, error)
	// Close releases the link (and, for process transports, the child).
	Close() error
}

// WireMeter is optionally implemented by ShardLinks that move bytes
// over a real transport. The coordinator samples it at round
// boundaries and reports the deltas to observers implementing
// WireObserver; in-process links simply do not implement it.
type WireMeter interface {
	// WireBytes returns the cumulative bytes received from and sent to
	// the shard over the link's lifetime.
	WireBytes() (in, out int64)
}

// WireObserver is an optional extension of RoundObserver for the
// partitioned runtime: observers that implement it receive per-round
// bytes-on-wire totals (summed over all shard links), immediately
// before the matching RoundEnd. LOCAL runs never fire it.
type WireObserver interface {
	WireRound(round int, bytesIn, bytesOut int64)
}

// PartRange is one shard's contiguous snapshot-index range [Lo, Hi).
type PartRange struct {
	Lo, Hi int32
}

// Partition is a set of shard links covering a snapshot: Links[i] hosts
// Ranges[i], and ranges are contiguous, ascending, and exhaustive over
// [0, n).
type Partition struct {
	Links  []ShardLink
	Ranges []PartRange
}

// Parts returns the number of shards.
func (p *Partition) Parts() int { return len(p.Links) }

// shardOf returns the shard hosting global index to. Ranges are
// contiguous and ascending, so binary search resolves it.
func (p *Partition) shardOf(to int32) int {
	return sort.Search(len(p.Ranges), func(s int) bool { return p.Ranges[s].Hi > to })
}

// Close closes every link, returning the first error.
func (p *Partition) Close() error {
	var first error
	for _, l := range p.Links {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SplitRange divides [0, n) into parts contiguous near-equal ranges
// (the first n%parts ranges are one longer). parts is clamped to
// [1, max(n, 1)] so every shard hosts at least one node whenever the
// snapshot is non-empty.
func SplitRange(n, parts int) []PartRange {
	if parts < 1 {
		parts = 1
	}
	if parts > n && n > 0 {
		parts = n
	}
	out := make([]PartRange, parts)
	chunk, rem := n/parts, n%parts
	lo := 0
	for s := range out {
		hi := lo + chunk
		if s < rem {
			hi++
		}
		out[s] = PartRange{Lo: int32(lo), Hi: int32(hi)}
		lo = hi
	}
	return out
}

// Program adapts one protocol family to the partitioned runtime: it
// builds per-node protocols from shared per-run state and translates
// payloads and outputs across the process boundary. A Program is built
// identically on the coordinator and on every shard from the same
// (name, params, snapshot), so both sides agree on every codec.
//
// Codec contract: DecodePayload(EncodePayload(p)) must be semantically
// identical to p — same concrete type (protocol type switches must
// match) and same content as seen by the protocol and by Sizer. The
// payload size (Sizer) is always charged sender-side on the original
// value, so encoding never affects volume accounting.
type Program interface {
	// NewNode returns the protocol for the node at global snapshot
	// index i.
	NewNode(i int) Protocol
	// EncodePayload serializes an outgoing payload. It is called once
	// per outbox entry (broadcast copies share the encoding).
	EncodePayload(p any) ([]byte, error)
	// DecodePayload rebuilds a payload on the receiving side.
	DecodePayload(data []byte) (any, error)
	// EncodeOutput serializes node i's final output from its protocol.
	EncodeOutput(i int, p Protocol) ([]byte, error)
	// DecodeOutput rebuilds node i's output on the coordinator.
	DecodeOutput(i int, data []byte) (any, error)
}

// ProgramFactory builds a Program for one run over the given snapshot.
// params is the program's opaque configuration, produced by the
// coordinator-side caller and shipped verbatim to every shard.
type ProgramFactory func(ix *graph.Indexed, params []byte) (Program, error)

var (
	programMu  sync.Mutex
	programReg = map[string]ProgramFactory{}
)

// RegisterProgram registers a program factory under a unique name.
// Programs register from init functions (dist registers "flood" and
// "retrans"; internal/core registers "correction"), so any process that
// links the package can host its shards. Double registration panics —
// it is always a wiring bug.
func RegisterProgram(name string, f ProgramFactory) {
	programMu.Lock()
	defer programMu.Unlock()
	if _, dup := programReg[name]; dup {
		panic(fmt.Sprintf("dist: program %q registered twice", name))
	}
	programReg[name] = f
}

// NewProgram instantiates a registered program for one run.
func NewProgram(name string, ix *graph.Indexed, params []byte) (Program, error) {
	programMu.Lock()
	f, ok := programReg[name]
	programMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dist: program %q is not registered in this process", name)
	}
	return f(ix, params)
}
