package verify

import (
	"testing"

	"repro/internal/graph"
)

func triangle() *graph.Graph {
	return graph.FromEdges(nil, [][2]graph.ID{{1, 2}, {2, 3}, {1, 3}})
}

func TestColoringChecker(t *testing.T) {
	g := triangle()
	good := map[graph.ID]int{1: 1, 2: 2, 3: 3}
	used, err := Coloring(g, good)
	if err != nil || used != 3 {
		t.Fatalf("good coloring rejected: %v, used %d", err, used)
	}
	for name, bad := range map[string]map[graph.ID]int{
		"missing":      {1: 1, 2: 2},
		"non-positive": {1: 0, 2: 2, 3: 3},
		"conflict":     {1: 1, 2: 1, 3: 2},
	} {
		if _, err := Coloring(g, bad); err == nil {
			t.Errorf("%s coloring accepted", name)
		}
	}
}

func TestIndependentSetChecker(t *testing.T) {
	g := triangle()
	if err := IndependentSet(g, graph.NewSet(1)); err != nil {
		t.Fatal(err)
	}
	if err := IndependentSet(g, graph.NewSet(1, 2)); err == nil {
		t.Fatal("adjacent pair accepted")
	}
	if err := IndependentSet(g, graph.NewSet(99)); err == nil {
		t.Fatal("foreign node accepted")
	}
	if err := IndependentSet(g, nil); err != nil {
		t.Fatal("empty set rejected")
	}
}

func TestMaximalIndependentSetChecker(t *testing.T) {
	g := graph.FromEdges(nil, [][2]graph.ID{{1, 2}, {2, 3}})
	if err := MaximalIndependentSet(g, graph.NewSet(1, 3)); err != nil {
		t.Fatal(err)
	}
	if err := MaximalIndependentSet(g, graph.NewSet(2)); err != nil {
		t.Fatal(err)
	}
	if err := MaximalIndependentSet(g, graph.NewSet(1)); err == nil {
		t.Fatal("non-maximal set accepted")
	}
	if err := MaximalIndependentSet(g, graph.NewSet(1, 2)); err == nil {
		t.Fatal("dependent set accepted")
	}
}

func TestBruteForceAlpha(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{triangle(), 1},
		{graph.FromEdges(nil, [][2]graph.ID{{1, 2}, {3, 4}}), 2},
		{graph.FromEdges([]graph.ID{7}, nil), 1},
		{graph.New(), 0},
	}
	for i, c := range cases {
		got, err := BruteForceAlpha(c.g)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Fatalf("case %d: α = %d, want %d", i, got, c.want)
		}
	}
	// Size guard.
	big := graph.New()
	for i := 0; i < 31; i++ {
		big.AddNode(graph.ID(i))
	}
	if _, err := BruteForceAlpha(big); err == nil {
		t.Fatal("oversized graph accepted")
	}
}

func TestBruteForceChromatic(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{triangle(), 3},
		{graph.FromEdges(nil, [][2]graph.ID{{1, 2}, {2, 3}}), 2},
		{graph.FromEdges([]graph.ID{7}, nil), 1},
		{graph.New(), 0},
		// C5 needs 3 colors.
		{graph.FromEdges(nil, [][2]graph.ID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}), 3},
	}
	for i, c := range cases {
		got, err := BruteForceChromatic(c.g)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Fatalf("case %d: χ = %d, want %d", i, got, c.want)
		}
	}
	big := graph.New()
	for i := 0; i < 21; i++ {
		big.AddNode(graph.ID(i))
	}
	if _, err := BruteForceChromatic(big); err == nil {
		t.Fatal("oversized graph accepted")
	}
}
