// Package verify provides validity checkers and exact brute-force
// references used by tests and benchmarks: legal-coloring and
// independent-set checks, and exponential-time exact solvers for small
// instances.
package verify

import (
	"fmt"

	"repro/internal/graph"
)

// Coloring checks that colors assigns a positive color to every node of g
// and that adjacent nodes have different colors. It returns the number of
// distinct colors used.
func Coloring(g *graph.Graph, colors map[graph.ID]int) (int, error) {
	distinct := make(map[int]bool)
	for _, v := range g.Nodes() {
		c, ok := colors[v]
		if !ok {
			return 0, fmt.Errorf("node %d has no color", v)
		}
		if c <= 0 {
			return 0, fmt.Errorf("node %d has non-positive color %d", v, c)
		}
		distinct[c] = true
	}
	for _, e := range g.Edges() {
		if colors[e[0]] == colors[e[1]] {
			return 0, fmt.Errorf("edge %d-%d is monochromatic (color %d)", e[0], e[1], colors[e[0]])
		}
	}
	return len(distinct), nil
}

// IndependentSet checks that is ⊆ V(g) and that no two members are
// adjacent.
func IndependentSet(g *graph.Graph, is graph.Set) error {
	for _, v := range is {
		if !g.HasNode(v) {
			return fmt.Errorf("node %d not in graph", v)
		}
	}
	for i := 0; i < len(is); i++ {
		for j := i + 1; j < len(is); j++ {
			if g.HasEdge(is[i], is[j]) {
				return fmt.Errorf("members %d and %d are adjacent", is[i], is[j])
			}
		}
	}
	return nil
}

// MaximalIndependentSet checks that is is independent and cannot be
// extended by any vertex outside it.
func MaximalIndependentSet(g *graph.Graph, is graph.Set) error {
	if err := IndependentSet(g, is); err != nil {
		return err
	}
	for _, v := range g.Nodes() {
		if is.Contains(v) {
			continue
		}
		extendable := true
		for _, u := range g.Neighbors(v) {
			if is.Contains(u) {
				extendable = false
				break
			}
		}
		if extendable {
			return fmt.Errorf("node %d could be added: set is not maximal", v)
		}
	}
	return nil
}

// BruteForceAlpha computes the exact independence number by exhaustive
// search. It requires g to have at most 30 nodes.
func BruteForceAlpha(g *graph.Graph) (int, error) {
	nodes := g.Nodes()
	n := len(nodes)
	if n > 30 {
		return 0, fmt.Errorf("graph too large for brute force: %d nodes", n)
	}
	idx := make(map[graph.ID]int, n)
	for i, v := range nodes {
		idx[v] = i
	}
	adj := make([]uint64, n)
	for _, e := range g.Edges() {
		i, j := idx[e[0]], idx[e[1]]
		adj[i] |= 1 << uint(j)
		adj[j] |= 1 << uint(i)
	}
	best := 0
	var rec func(cand uint64, size int)
	rec = func(cand uint64, size int) {
		if size+popcount(cand) <= best {
			return
		}
		if cand == 0 {
			if size > best {
				best = size
			}
			return
		}
		// Branch on the lowest candidate bit: in or out.
		i := lowestBit(cand)
		rec(cand&^(1<<uint(i))&^adj[i], size+1)
		rec(cand&^(1<<uint(i)), size)
	}
	rec((uint64(1)<<uint(n))-1, 0)
	return best, nil
}

// BruteForceChromatic computes the exact chromatic number by exhaustive
// search. It requires g to have at most 20 nodes.
func BruteForceChromatic(g *graph.Graph) (int, error) {
	nodes := g.Nodes()
	n := len(nodes)
	if n == 0 {
		return 0, nil
	}
	if n > 20 {
		return 0, fmt.Errorf("graph too large for brute force: %d nodes", n)
	}
	for k := 1; ; k++ {
		if colorableWith(g, nodes, k) {
			return k, nil
		}
	}
}

func colorableWith(g *graph.Graph, nodes []graph.ID, k int) bool {
	colors := make(map[graph.ID]int, len(nodes))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(nodes) {
			return true
		}
		v := nodes[i]
		// Symmetry breaking: the i-th node may only introduce color i+1.
		maxColor := i + 1
		if maxColor > k {
			maxColor = k
		}
	next:
		for c := 1; c <= maxColor; c++ {
			for _, u := range g.Neighbors(v) {
				if colors[u] == c {
					continue next
				}
			}
			colors[v] = c
			if rec(i + 1) {
				return true
			}
			delete(colors, v)
		}
		return false
	}
	return rec(0)
}

func popcount(x uint64) int {
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}

func lowestBit(x uint64) int {
	i := 0
	for x&1 == 0 {
		x >>= 1
		i++
	}
	return i
}
