package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	runtimepprof "runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to path and returns the
// function that stops the profile and closes the file. Callers defer the
// stop function around the region they want profiled (typically the whole
// run).
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	if err := runtimepprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpu profile: %w", err)
	}
	return func() error {
		runtimepprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile forces a GC (so the profile reflects live objects,
// not garbage) and writes the heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := runtimepprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("heap profile: %w", err)
	}
	return f.Close()
}

// Serve starts an HTTP server on addr exposing net/http/pprof under
// /debug/pprof/ and, when reg is non-nil, the registry snapshot under
// /debug/vars. The handlers are mounted on a private mux — importing
// net/http/pprof pollutes http.DefaultServeMux, which this avoids — and
// the server runs until the returned shutdown function is called. The
// second return value is the bound address (useful with addr
// "127.0.0.1:0").
func Serve(addr string, reg *Registry) (shutdown func() error, bound string, err error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("/debug/vars", reg.Handler())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("pprof server: %w", err)
	}
	srv := &http.Server{Handler: mux}
	// The server goroutine is an intentional daemon: it lives until the
	// caller invokes the returned srv.Close, which unblocks Serve with
	// ErrServerClosed — the join handle is the shutdown func itself.
	//chordalvet:ignore goroleak joined via the returned srv.Close shutdown func
	go func() { _ = srv.Serve(ln) }()
	return srv.Close, ln.Addr().String(), nil
}
