package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestSummarizeAggregates(t *testing.T) {
	events := []Event{
		{V: 3, Kind: KindRound, Phase: "p", Run: 0, Round: 0, Messages: 10, Volume: 40, WallNS: 100, MaxInbox: 2, BusyNS: []int64{60, 20}},
		{V: 3, Kind: KindRound, Phase: "p", Run: 0, Round: 1, Messages: 5, Volume: 20, WallNS: 100, MaxInbox: 3, BusyNS: []int64{50, 30}},
		{V: 3, Kind: KindKernel, Phase: "p", Kernel: "decide", Shards: 2, WallNS: 80, BusyNS: []int64{60, 20}, Items: []int64{8, 8}},
		{V: 3, Kind: KindPhase, Phase: "p", Runs: 1, Rounds: 2, Messages: 15, Volume: 60, WallNS: 500, P50NS: 100, P99NS: 100},
		{V: 3, Kind: KindMem, Phase: "p", HeapAllocB: 1 << 20},
	}
	s := Summarize(events)
	if s.SchemaV != 3 || s.Records != 5 {
		t.Fatalf("schema=%d records=%d, want 3/5", s.SchemaV, s.Records)
	}
	if len(s.Phases) != 1 {
		t.Fatalf("got %d phases, want 1", len(s.Phases))
	}
	p := s.Phases[0]
	if p.Rounds != 2 || p.Messages != 15 || p.Volume != 60 || p.MaxInbox != 3 {
		t.Errorf("phase agg = %+v", p)
	}
	// The phase span event supersedes the sum-of-round-walls fallback.
	if p.WallNS != 500 {
		t.Errorf("phase WallNS=%d, want 500 from the phase span", p.WallNS)
	}
	if p.P50NS != 100 || p.P99NS < p.P50NS {
		t.Errorf("phase p50=%d p99=%d", p.P50NS, p.P99NS)
	}

	// Two kernel rows: the named decide launch plus the engine's own
	// per-round shard times aggregated as engine[p].
	byName := map[string]KernelAgg{}
	for _, k := range s.Kernels {
		byName[k.Kernel] = k
	}
	d, ok := byName["decide"]
	if !ok {
		t.Fatalf("no decide kernel row: %+v", s.Kernels)
	}
	if d.Launches != 1 || d.Shards != 2 || d.Items != 16 || d.BusyNS != 80 {
		t.Errorf("decide agg = %+v", d)
	}
	// Imbalance = max/mean = 60/40.
	if d.Imbalance < 1.49 || d.Imbalance > 1.51 {
		t.Errorf("decide imbalance=%v, want 1.5", d.Imbalance)
	}
	e, ok := byName["engine[p]"]
	if !ok {
		t.Fatalf("no engine[p] row: %+v", s.Kernels)
	}
	if e.Launches != 2 || e.BusyNS != 160 {
		t.Errorf("engine agg = %+v", e)
	}
	if len(s.Mem) != 1 || s.Mem[0].HeapAllocB != 1<<20 {
		t.Errorf("mem agg = %+v", s.Mem)
	}
}

func TestSummarizeImbalanceEdge(t *testing.T) {
	if got := launchImbalance([]int64{100}); got != 0 {
		t.Errorf("single shard imbalance=%v, want 0", got)
	}
	if got := launchImbalance(nil); got != 0 {
		t.Errorf("empty imbalance=%v, want 0", got)
	}
	if got := launchImbalance([]int64{50, 50}); got != 1 {
		t.Errorf("balanced imbalance=%v, want 1", got)
	}
}

func TestWriteReportTables(t *testing.T) {
	c := NewCollector()
	c.SetClock(fakeClock())
	c.SetPhase("ping")
	runPing(t, c, 8, 2)
	c.KernelStart("decide", 2)
	c.KernelShardStart(0)
	c.KernelShardEnd(0, 4)
	c.KernelShardStart(1)
	c.KernelShardEnd(1, 4)
	c.KernelEnd()
	if err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, Summarize(c.Events())); err != nil {
		t.Fatalf("report: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"PHASES", "KERNELS", "ping", "decide", "p50", "max/mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
