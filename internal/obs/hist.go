package obs

import "math/bits"

// histBuckets is the number of log₂ buckets: bucket 0 holds the value 0,
// bucket b ≥ 1 holds values with bit length b, i.e. [2^(b-1), 2^b − 1].
// Non-negative int64 values have bit length at most 63, so 64 buckets
// cover the full range with no overflow arithmetic anywhere.
const histBuckets = 64

// Hist is a fixed-size log₂-bucketed streaming histogram of non-negative
// int64 samples (nanosecond latencies in this package). The zero value
// is ready to use, Record touches only the embedded arrays — no
// allocation, ever — and Merge/Quantile make it suitable both for the
// Collector's in-flight per-phase aggregation and for cmd/tracestat's
// offline reduction over many traces. Negative samples clamp to 0.
//
// Quantile interpolates linearly inside the winning bucket and clamps to
// the observed [Min, Max], so it is exact for 0-, 1-, and 2-sample
// histograms and within a factor of 2 otherwise; it is monotone
// nondecreasing in p, which the reporting layer relies on (p50 ≤ p99 in
// every table, no matter the distribution).
type Hist struct {
	counts   [histBuckets]int64
	n        int64
	sum      int64
	min, max int64
}

// Record adds one sample.
//
//chordalvet:hotpath budget=0 per-round metrics aggregation must stay allocation-free
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bits.Len64(uint64(v))]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.n }

// Sum returns the sum of recorded samples.
func (h *Hist) Sum() int64 { return h.sum }

// Min returns the smallest recorded sample (0 when empty).
func (h *Hist) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (0 when empty).
func (h *Hist) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Hist) Mean() int64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / h.n
}

// Reset returns the histogram to its empty state without allocating.
func (h *Hist) Reset() {
	*h = Hist{}
}

// Merge folds o's samples into h. Merging histograms recorded from
// disjoint streams is equivalent to recording the concatenated stream.
func (h *Hist) Merge(o *Hist) {
	if o.n == 0 {
		return
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
	for b := range h.counts {
		h.counts[b] += o.counts[b]
	}
}

// bucketBounds returns the value range [lo, hi] covered by bucket b.
func bucketBounds(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 0
	}
	return int64(1) << (b - 1), int64(1)<<b - 1
}

// Quantile returns an estimate of the p-quantile (p in [0, 1]; values
// outside clamp). Empty histograms report 0. The estimate interpolates
// within the winning log₂ bucket and clamps to the observed min/max.
func (h *Hist) Quantile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// rank is the 1-based position of the wanted sample in sorted order.
	rank := p * float64(h.n)
	if rank < 1 {
		rank = 1
	}
	cum := 0.0
	for b := range h.counts {
		if h.counts[b] == 0 {
			continue
		}
		cnt := float64(h.counts[b])
		if cum+cnt >= rank {
			lo, hi := bucketBounds(b)
			// The float interpolation can round up to hi-lo+1; in the top
			// bucket (hi = MaxInt64) that would overflow lo+off past the
			// int64 ceiling, so bound the offset to the bucket width.
			off := int64(((rank - cum) / cnt) * float64(hi-lo))
			if off < 0 || off > hi-lo {
				off = hi - lo
			}
			v := lo + off
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += cnt
	}
	return h.max
}
