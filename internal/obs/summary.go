package obs

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// PhaseAgg is one row of the per-phase aggregate table: the round
// totals of PhaseSummary plus the latency view the v3 records add —
// the wall-clock span of the phase (from "phase" timeline records when
// present, else the sum of round walls) and p50/p99 round latency from
// a streaming Hist over the phase's round events.
type PhaseAgg struct {
	Phase    string
	Runs     int
	Rounds   int
	Messages int
	Volume   int
	MaxInbox int
	WallNS   int64 // wall-clock span (phase record) or Σ round walls
	P50NS    int64
	P99NS    int64
}

// KernelAgg is one row of the worker-imbalance report: every launch of
// one sharded kernel (or of the engine's sharded round schedule, keyed
// "engine[phase]") folded together. Imbalance is the worst per-launch
// max/mean shard-busy ratio — 1.0 is a perfectly balanced launch; the
// mean ignores launches with fewer than two shards, which cannot be
// imbalanced.
type KernelAgg struct {
	Kernel    string
	Launches  int
	Shards    int // widest launch
	Items     int64
	BusyNS    int64 // Σ shard busy across launches
	WallNS    int64
	Imbalance float64 // worst launch's max/mean busy ratio
}

// MemAgg is one "mem" snapshot row, in trace order.
type MemAgg struct {
	Phase        string
	HeapAllocB   uint64
	HeapObjects  uint64
	TotalAllocB  uint64
	NumGC        uint32
	PauseTotalNS uint64
}

// Summary is the full aggregate view of one event stream; Summarize
// builds it and WriteReport renders it. cmd/tracestat's report command
// and the CLIs' -metrics flags share this code path, so the offline and
// in-process reports can never drift apart.
type Summary struct {
	SchemaV int // highest schema version seen
	Records int
	Phases  []PhaseAgg
	Kernels []KernelAgg
	Mem     []MemAgg
}

// launchImbalance returns max/mean over the positive busy spans of one
// launch (0 when fewer than two shards report busy time).
func launchImbalance(busy []int64) float64 {
	var max, sum int64
	n := 0
	for _, b := range busy {
		if b <= 0 {
			continue
		}
		n++
		sum += b
		if b > max {
			max = b
		}
	}
	if n < 2 || sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(n)
	return float64(max) / mean
}

// Summarize folds an event stream (a Collector's Events() or a decoded
// JSONL trace) into per-phase and per-kernel aggregates. Engine rounds
// that ran sharded contribute "engine[phase]" kernel rows, so the flood
// assembly and correction choreography get imbalance rows alongside the
// explicit compute kernels. Order is first appearance, so summaries of
// deterministic traces are deterministic.
func Summarize(events []Event) *Summary {
	s := &Summary{}
	phaseIdx := make(map[string]int)
	phaseLastRun := make(map[string]int)
	phaseHists := make(map[string]*Hist)
	phaseHasSpan := make(map[string]bool)
	kernelIdx := make(map[string]int)

	phaseRow := func(name string) *PhaseAgg {
		i, ok := phaseIdx[name]
		if !ok {
			i = len(s.Phases)
			phaseIdx[name] = i
			phaseLastRun[name] = -1
			phaseHists[name] = &Hist{}
			s.Phases = append(s.Phases, PhaseAgg{Phase: name})
		}
		return &s.Phases[i]
	}
	kernelRow := func(name string) *KernelAgg {
		i, ok := kernelIdx[name]
		if !ok {
			i = len(s.Kernels)
			kernelIdx[name] = i
			s.Kernels = append(s.Kernels, KernelAgg{Kernel: name})
		}
		return &s.Kernels[i]
	}

	for _, ev := range events {
		s.Records++
		if ev.V > s.SchemaV {
			s.SchemaV = ev.V
		}
		switch ev.Kind {
		case KindRound:
			p := phaseRow(ev.Phase)
			if phaseLastRun[ev.Phase] != ev.Run {
				phaseLastRun[ev.Phase] = ev.Run
				p.Runs++
			}
			p.Rounds++
			p.Messages += ev.Messages
			p.Volume += ev.Volume
			if ev.MaxInbox > p.MaxInbox {
				p.MaxInbox = ev.MaxInbox
			}
			if !phaseHasSpan[ev.Phase] {
				p.WallNS += ev.WallNS
			}
			phaseHists[ev.Phase].Record(ev.WallNS)
			if len(ev.BusyNS) > 1 {
				k := kernelRow("engine[" + ev.Phase + "]")
				k.Launches++
				if ev.Shards > k.Shards {
					k.Shards = ev.Shards
				}
				k.Items += int64(ev.Nodes)
				k.WallNS += ev.WallNS
				for _, b := range ev.BusyNS {
					k.BusyNS += b
				}
				if r := launchImbalance(ev.BusyNS); r > k.Imbalance {
					k.Imbalance = r
				}
			}
		case KindKernel:
			k := kernelRow(ev.Kernel)
			k.Launches++
			if ev.Shards > k.Shards {
				k.Shards = ev.Shards
			}
			for _, it := range ev.Items {
				k.Items += it
			}
			for _, b := range ev.BusyNS {
				k.BusyNS += b
			}
			k.WallNS += ev.WallNS
			if r := launchImbalance(ev.BusyNS); r > k.Imbalance {
				k.Imbalance = r
			}
			// Kernel launches happen inside a phase's wall-clock span;
			// make sure the phase appears even if it has no rounds.
			phaseRow(ev.Phase)
		case KindPhase:
			// The recorded span supersedes the Σ-round-walls fallback.
			p := phaseRow(ev.Phase)
			if !phaseHasSpan[ev.Phase] {
				phaseHasSpan[ev.Phase] = true
				p.WallNS = 0
			}
			p.WallNS += ev.WallNS
		case KindMem:
			s.Mem = append(s.Mem, MemAgg{
				Phase:        ev.Phase,
				HeapAllocB:   ev.HeapAllocB,
				HeapObjects:  ev.HeapObjects,
				TotalAllocB:  ev.TotalAllocB,
				NumGC:        ev.NumGC,
				PauseTotalNS: ev.PauseTotalNS,
			})
		}
	}
	for i := range s.Phases {
		h := phaseHists[s.Phases[i].Phase]
		s.Phases[i].P50NS = h.Quantile(0.5)
		s.Phases[i].P99NS = h.Quantile(0.99)
	}
	return s
}

func fmtNS(ns int64) string {
	if ns == 0 {
		return "-"
	}
	return time.Duration(ns).Round(time.Microsecond).String()
}

func fmtMiB(b uint64) string {
	return fmt.Sprintf("%.1f", float64(b)/(1<<20))
}

// WriteReport renders the summary as the aligned text tables behind
// `tracestat report` and the CLIs' -metrics output.
func WriteReport(w io.Writer, s *Summary) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "trace: %d records, schema v%d\n\n", s.Records, s.SchemaV)
	fmt.Fprintln(tw, "PHASES\tphase\truns\trounds\tmessages\tvolume\tmax inbox\twall\tp50 round\tp99 round")
	for _, p := range s.Phases {
		fmt.Fprintf(tw, "\t%s\t%d\t%d\t%d\t%d\t%d\t%s\t%s\t%s\n",
			p.Phase, p.Runs, p.Rounds, p.Messages, p.Volume, p.MaxInbox,
			fmtNS(p.WallNS), fmtNS(p.P50NS), fmtNS(p.P99NS))
	}
	fmt.Fprintln(tw, "\nKERNELS\tkernel\tlaunches\tshards\titems\tbusy\twall\timbalance (max/mean)")
	for _, k := range s.Kernels {
		imb := "-"
		if k.Imbalance > 0 {
			imb = fmt.Sprintf("%.2f", k.Imbalance)
		}
		fmt.Fprintf(tw, "\t%s\t%d\t%d\t%d\t%s\t%s\t%s\n",
			k.Kernel, k.Launches, k.Shards, k.Items, fmtNS(k.BusyNS), fmtNS(k.WallNS), imb)
	}
	if len(s.Mem) > 0 {
		fmt.Fprintln(tw, "\nMEM\tphase\theap MiB\theap objects\ttotal alloc MiB\tGCs\tGC pause")
		for _, m := range s.Mem {
			fmt.Fprintf(tw, "\t%s\t%s\t%d\t%s\t%d\t%s\n",
				m.Phase, fmtMiB(m.HeapAllocB), m.HeapObjects, fmtMiB(m.TotalAllocB), m.NumGC, fmtNS(int64(m.PauseTotalNS)))
		}
	}
	return tw.Flush()
}
