package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
)

// withMode runs fn with dist.DefaultMode temporarily overridden.
func withMode(t *testing.T, m dist.ExecMode, fn func()) {
	t.Helper()
	old := dist.DefaultMode
	dist.DefaultMode = m
	defer func() { dist.DefaultMode = old }()
	fn()
}

// canonicalFaultTrace runs a faulty flood under the current DefaultMode
// and returns the canonical JSONL trace bytes.
func canonicalFaultTrace(t *testing.T, g *graph.Graph, radius int, f *dist.Faults) []byte {
	t.Helper()
	var buf bytes.Buffer
	c := NewCollector()
	c.SetTrace(&buf)
	c.SetCanonical(true)
	if _, _, err := dist.CollectBallsIndexedFaulty(graph.NewIndexed(g), radius, nil, c, f); err != nil {
		t.Fatal(err)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFaultTraceByteIdenticalAcrossModes is the acceptance gate for
// deterministic fault injection: the same (graph, protocol, seed, plan)
// must yield byte-identical canonical JSONL traces under ModePooled,
// ModePerNode, and ModeSequential.
func TestFaultTraceByteIdenticalAcrossModes(t *testing.T) {
	g := gen.RandomChordal(180, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.5}, 37)
	plans := map[string]*dist.Faults{
		"fault-free": nil,
		"drop":       {Plan: fault.Plan{Seed: 7, Drop: 0.2}},
		"mixed":      {Plan: fault.Plan{Seed: 7, Drop: 0.1, Dup: 0.2, MaxDelay: 3}},
	}
	for name, f := range plans {
		var ref []byte
		withMode(t, dist.ModeSequential, func() { ref = canonicalFaultTrace(t, g, 3, f) })
		if len(ref) == 0 {
			t.Fatalf("%s: empty trace", name)
		}
		for _, m := range []dist.ExecMode{dist.ModePooled, dist.ModePerNode} {
			var got []byte
			withMode(t, m, func() { got = canonicalFaultTrace(t, g, 3, f) })
			if !bytes.Equal(ref, got) {
				t.Errorf("%s: trace under mode %d differs from sequential:\n%s\nvs\n%s", name, m, got, ref)
			}
		}
	}
}

// TestFaultTraceSchema: fault rounds carry the v2 fault fields, and
// fault-free rounds omit them entirely (backward-readable: a v1 reader
// ignoring unknown keys sees a valid v1 round event).
func TestFaultTraceSchema(t *testing.T) {
	g := gen.KTree(120, 3, 41)
	f := &dist.Faults{Plan: fault.Plan{Seed: 3, Drop: 0.3, Dup: 0.3, MaxDelay: 2}}
	raw := canonicalFaultTrace(t, g, 3, f)

	sawFault := false
	for _, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("bad JSONL line %s: %v", line, err)
		}
		if m["v"].(float64) != SchemaVersion {
			t.Fatalf("v=%v, want %d", m["v"], SchemaVersion)
		}
		if _, ok := m["dropped"]; ok {
			sawFault = true
		}
	}
	if !sawFault {
		t.Error("no trace event carried the dropped field under drop=0.3")
	}

	clean := canonicalFaultTrace(t, g, 3, nil)
	for _, key := range []string{"dropped", "duplicated", "dead_letters", "stall", "crashed"} {
		if bytes.Contains(clean, []byte(key)) {
			t.Errorf("fault-free trace contains %q — fault fields must be omitted", key)
		}
	}
}

// TestCollectorFaultRoundMerge: the parked FaultRound stats land on the
// matching round event, including the crash list.
func TestCollectorFaultRoundMerge(t *testing.T) {
	c := NewCollector()
	c.SetCanonical(true)
	c.RoundStart(0, 1)
	c.FaultRound(dist.FaultStats{Round: 0, Dropped: 2, Stall: 3, Crashed: []graph.ID{5}})
	c.RoundEnd(dist.RoundStats{Round: 0, Nodes: 4})
	c.RoundStart(1, 1)
	c.RoundEnd(dist.RoundStats{Round: 1, Nodes: 4})

	evs := c.Events()
	if len(evs) != 2 {
		t.Fatalf("%d events, want 2", len(evs))
	}
	if evs[0].Dropped != 2 || evs[0].Stall != 3 || len(evs[0].Crashed) != 1 || evs[0].Crashed[0] != 5 {
		t.Errorf("fault stats not merged into round 0: %+v", evs[0])
	}
	if evs[1].Dropped != 0 || evs[1].Stall != 0 || evs[1].Crashed != nil {
		t.Errorf("fault stats leaked into round 1: %+v", evs[1])
	}
}
