package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/peel"
)

// pingProtocol floods a counter to neighbors for a fixed number of
// rounds, so every round sends deg(v) messages per node.
type pingProtocol struct {
	rounds int
	seen   int
}

func (p *pingProtocol) Init(ctx *dist.Context) {
	for _, u := range ctx.Neighbors() {
		ctx.Send(u, 1)
	}
}

func (p *pingProtocol) Round(ctx *dist.Context, inbox []dist.Message) {
	p.seen += len(inbox)
	if p.rounds--; p.rounds > 0 {
		for _, u := range ctx.Neighbors() {
			ctx.Send(u, 1)
		}
	}
}

func (p *pingProtocol) Done() bool  { return p.rounds <= 0 }
func (p *pingProtocol) Output() any { return p.seen }

func pathGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.ID(i))
	}
	for i := 1; i < n; i++ {
		g.AddEdge(graph.ID(i-1), graph.ID(i))
	}
	return g
}

// fakeClock advances one microsecond per reading, making every wall
// timing deterministic. The counter is atomic because shard hooks read
// the clock from worker goroutines.
func fakeClock() func() time.Time {
	base := time.Unix(0, 0)
	var ticks atomic.Int64
	return func() time.Time {
		return base.Add(time.Duration(ticks.Add(1)) * time.Microsecond)
	}
}

func runPing(t *testing.T, c *Collector, n, rounds int) *dist.Result {
	t.Helper()
	eng := dist.NewEngine(pathGraph(n), func(v graph.ID) dist.Protocol {
		return &pingProtocol{rounds: rounds}
	})
	eng.Observer = c
	res, err := eng.Run(100)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	return res
}

func TestCollectorOneEventPerRound(t *testing.T) {
	c := NewCollector()
	c.SetClock(fakeClock())
	res := runPing(t, c, 8, 3)

	events := c.Events()
	// One event per step: the Init step plus res.Rounds communication
	// rounds.
	if want := res.Rounds + 1; len(events) != want {
		t.Fatalf("got %d events, want %d (rounds=%d + init)", len(events), want, res.Rounds)
	}
	totalMsgs, totalVol := 0, 0
	for i, ev := range events {
		if ev.V != SchemaVersion {
			t.Errorf("event %d: schema v=%d, want %d", i, ev.V, SchemaVersion)
		}
		if ev.Kind != KindRound {
			t.Errorf("event %d: kind %q, want %q", i, ev.Kind, KindRound)
		}
		if ev.Round != i {
			t.Errorf("event %d: round %d, want %d", i, ev.Round, i)
		}
		if ev.Nodes != 8 {
			t.Errorf("event %d: nodes %d, want 8", i, ev.Nodes)
		}
		if ev.WallNS <= 0 {
			t.Errorf("event %d: WallNS %d, want > 0 under the fake clock", i, ev.WallNS)
		}
		totalMsgs += ev.Messages
		totalVol += ev.Volume
	}
	if totalMsgs != res.Messages {
		t.Errorf("per-round messages sum to %d, engine result says %d", totalMsgs, res.Messages)
	}
	if totalVol != res.Volume {
		t.Errorf("per-round volume sums to %d, engine result says %d", totalVol, res.Volume)
	}
	last := events[len(events)-1]
	if last.Done != 8 {
		t.Errorf("final event Done=%d, want 8", last.Done)
	}
	// A path's interior nodes receive 2 messages per round.
	if events[1].MaxInbox != 2 {
		t.Errorf("round-1 MaxInbox=%d, want 2 on a path", events[1].MaxInbox)
	}
}

func TestCollectorJSONLTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	c := NewCollector()
	c.SetClock(fakeClock())
	c.SetTrace(&buf)
	c.SetPhase("ping")
	res := runPing(t, c, 6, 2)
	if err := c.Err(); err != nil {
		t.Fatalf("trace write: %v", err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if want := res.Rounds + 1; len(lines) != want {
		t.Fatalf("trace has %d lines, want %d", len(lines), want)
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		for _, key := range []string{"v", "kind", "phase", "run", "round", "messages", "volume", "done", "max_inbox", "wall_ns"} {
			if _, ok := m[key]; !ok {
				t.Errorf("line %d: missing key %q", i, key)
			}
		}
		if m["v"].(float64) != SchemaVersion {
			t.Errorf("line %d: v=%v, want %d", i, m["v"], SchemaVersion)
		}
		if m["phase"] != "ping" {
			t.Errorf("line %d: phase=%v, want ping", i, m["phase"])
		}
	}
}

func TestCollectorPhasesAndRuns(t *testing.T) {
	c := NewCollector()
	c.SetClock(fakeClock())
	c.SetPhase("a")
	runPing(t, c, 5, 2)
	runPing(t, c, 5, 2)
	c.SetPhase("b")
	res := runPing(t, c, 5, 3)

	phases := c.Phases()
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2: %+v", len(phases), phases)
	}
	if phases[0].Phase != "a" || phases[1].Phase != "b" {
		t.Fatalf("phase order %q,%q, want a,b", phases[0].Phase, phases[1].Phase)
	}
	if phases[0].Runs != 2 || phases[1].Runs != 1 {
		t.Errorf("runs per phase = %d,%d, want 2,1", phases[0].Runs, phases[1].Runs)
	}
	if want := res.Rounds + 1; phases[1].Rounds != want {
		t.Errorf("phase b rounds=%d, want %d", phases[1].Rounds, want)
	}
	if phases[0].WallNS <= 0 {
		t.Errorf("phase a WallNS=%d, want > 0", phases[0].WallNS)
	}
}

func TestCollectorShardBusyTimes(t *testing.T) {
	c := NewCollector()
	c.SetClock(fakeClock())
	eng := dist.NewEngine(pathGraph(64), func(v graph.ID) dist.Protocol {
		return &pingProtocol{rounds: 2}
	})
	eng.Mode = dist.ModeSequential
	eng.Observer = c
	if _, err := eng.Run(100); err != nil {
		t.Fatalf("engine: %v", err)
	}
	for i, ev := range c.Events() {
		if ev.Shards != 1 {
			t.Errorf("event %d: shards=%d, want 1 in sequential mode", i, ev.Shards)
		}
		if len(ev.BusyNS) != 1 || ev.BusyNS[0] <= 0 {
			t.Errorf("event %d: BusyNS=%v, want one positive entry", i, ev.BusyNS)
		}
	}
}

func TestPeelTraceLayerEvents(t *testing.T) {
	g := gen.RandomChordal(200, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 7)
	c := NewCollector()
	c.SetClock(fakeClock())
	c.SetPhase("peel")
	res, err := peel.Run(g, peel.Options{InternalDiameter: 9, Trace: c.PeelTrace()})
	if err != nil {
		t.Fatalf("peel: %v", err)
	}
	events := c.Events()
	if len(events) != len(res.Layers) {
		t.Fatalf("got %d layer events, want %d", len(events), len(res.Layers))
	}
	peeled := 0
	for i, ev := range events {
		if ev.Kind != KindLayer {
			t.Errorf("event %d: kind %q, want %q", i, ev.Kind, KindLayer)
		}
		if ev.Round != res.Layers[i].Index {
			t.Errorf("event %d: iteration %d, want %d", i, ev.Round, res.Layers[i].Index)
		}
		if ev.NodesPeeled != len(res.Layers[i].Nodes) {
			t.Errorf("event %d: peeled %d, want %d", i, ev.NodesPeeled, len(res.Layers[i].Nodes))
		}
		if got := ev.PendantPaths + ev.InternalPaths; got != len(res.Layers[i].Paths) {
			t.Errorf("event %d: %d paths, want %d", i, got, len(res.Layers[i].Paths))
		}
		peeled += ev.NodesPeeled
		if ev.Remaining != g.NumNodes()-peeled {
			t.Errorf("event %d: remaining %d, want %d", i, ev.Remaining, g.NumNodes()-peeled)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs").Add(3)
	r.Counter("msgs").Add(4)
	r.Gauge("done").Set(17)
	if got := r.Counter("msgs").Value(); got != 7 {
		t.Errorf("counter=%d, want 7", got)
	}
	if got := r.Gauge("done").Value(); got != 17 {
		t.Errorf("gauge=%d, want 17", got)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var m map[string]int64
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if m["msgs"] != 7 || m["done"] != 17 {
		t.Errorf("snapshot=%v, want msgs=7 done=17", m)
	}
	// Sorted keys: "done" before "msgs" in the raw bytes.
	if d, ms := strings.Index(buf.String(), "done"), strings.Index(buf.String(), "msgs"); d > ms {
		t.Errorf("keys not sorted: %s", buf.String())
	}
}

func TestCollectorUpdatesRegistry(t *testing.T) {
	r := NewRegistry()
	c := NewCollector()
	c.SetClock(fakeClock())
	c.SetRegistry(r)
	res := runPing(t, c, 6, 2)
	if got := r.Counter("rounds_total").Value(); got != int64(res.Rounds+1) {
		t.Errorf("rounds_total=%d, want %d", got, res.Rounds+1)
	}
	if got := r.Counter("messages_total").Value(); got != int64(res.Messages) {
		t.Errorf("messages_total=%d, want %d", got, res.Messages)
	}
	if got := r.Gauge("nodes_done").Value(); got != 6 {
		t.Errorf("nodes_done=%d, want 6", got)
	}
}

func TestServePprofAndVars(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(1)
	shutdown, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer shutdown()

	for _, path := range []string{"/debug/pprof/", "/debug/vars"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", path)
		}
	}
}

func TestProfileFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := dir + "/cpu.pprof"
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatalf("start cpu profile: %v", err)
	}
	runPing(t, NewCollector(), 32, 3)
	if err := stop(); err != nil {
		t.Fatalf("stop cpu profile: %v", err)
	}
	heap := dir + "/heap.pprof"
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatalf("heap profile: %v", err)
	}
	for _, p := range []string{cpu, heap} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		if len(b) == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}
