// Package obs is the repo's observability layer: per-round tracing,
// counter/gauge registries, and pprof wiring for the LOCAL simulator.
//
// The simulation core (internal/dist, internal/core, internal/peel)
// never reads the wall clock — the LOCAL model measures time in rounds,
// and the chordalvet wallclock analyzer enforces the invariant. All
// timing therefore lives here: dist.Engine invokes a caller-supplied
// RoundObserver at round boundaries, and the Collector in this package
// stamps those callbacks with wall times itself. internal/obs is the one
// package under internal/ that chordalvet sanctions as a clock user.
//
// A Collector aggregates engine events into an in-memory per-round table
// (and per-phase summaries) and optionally streams one JSON object per
// round to a JSONL trace writer. Attaching a nil observer to an engine
// is the documented zero-cost fast path; attaching a Collector costs a
// handful of clock reads per round, never per node.
package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/graph"
)

// SchemaVersion is the value of every trace event's "v" field. Bump it
// when an existing field changes meaning; adding fields is backward
// compatible and does not bump it.
//
// v2 (fault injection): round events gain the optional fault fields
// dropped/duplicated/dead_letters/stall/crashed, and wall_ns is omitted
// when zero (it was previously always present). v1 readers that ignore
// unknown fields and treat a missing wall_ns as 0 read v2 traces
// correctly.
//
// v3 (deep kernel metrics): three new record kinds — "kernel" spans
// from the sharded compute kernels (per-worker busy times and item
// counts), "phase" timeline spans emitted when the phase label changes
// (wall-clock attribution plus p50/p99 round latency), and opt-in "mem"
// heap/GC snapshots at phase boundaries — plus the optional t_ns offset
// on round events. Every new field is omitempty and every new kind is
// additive, so a v2 reader that ignores unknown kinds and fields reads
// v3 traces correctly; canonical mode suppresses all three new kinds
// (they are schedule/hardware measurements by definition), keeping the
// cross-mode byte-identical guarantee exactly as narrow as in v2.
const SchemaVersion = 3

// Event kinds. One "round" event is emitted per engine step (the Init
// step is round 0); "layer" events come from the peeling process via
// Collector.PeelTrace; "kernel" events are per-launch spans of the
// sharded compute kernels (schema v3); "phase" events are wall-clock
// timeline spans emitted when the phase label changes (schema v3);
// "mem" events are opt-in heap/GC snapshots at phase boundaries
// (schema v3, see Collector.SetMemStats).
const (
	KindRound  = "round"
	KindLayer  = "layer"
	KindKernel = "kernel"
	KindPhase  = "phase"
	KindMem    = "mem"
)

// Event is one JSONL trace record and one row of the Collector's
// in-memory table. All fields except the wall/busy timings are pure
// functions of (graph, protocol) and identical across engine ExecModes;
// Shards describes the schedule and timings describe the hardware.
type Event struct {
	V     int    `json:"v"`
	Kind  string `json:"kind"`
	Phase string `json:"phase,omitempty"`
	// Run is the 0-based ordinal of the engine run under this Collector
	// (a pruning phase drives many runs through one Collector).
	Run int `json:"run"`
	// Round is the step index within the run: 0 for Init, then the
	// 1-based communication round. For layer events it is the peeling
	// iteration.
	Round int `json:"round"`

	// Round-event fields (see dist.RoundStats).
	Nodes    int `json:"nodes,omitempty"`
	Shards   int `json:"shards,omitempty"`
	Messages int `json:"messages"`
	Volume   int `json:"volume"`
	Done     int `json:"done"`
	MaxInbox int `json:"max_inbox"`

	// Fault fields (schema v2): the round's fault-injection activity, all
	// omitted when the engine has no fault schedule or the schedule did
	// nothing this round (see dist.FaultStats).
	Dropped     int        `json:"dropped,omitempty"`
	Duplicated  int        `json:"duplicated,omitempty"`
	DeadLetters int        `json:"dead_letters,omitempty"`
	Stall       int        `json:"stall,omitempty"`
	Crashed     []graph.ID `json:"crashed,omitempty"`

	// Wire fields (schema v3, additive): bytes moved between the
	// coordinator and its shard hosts during this round, present only on
	// partitioned runs with metered links (see dist.WireMeter). They
	// measure the transport, not the protocol, so canonical mode drops
	// them — a partitioned canonical trace stays byte-identical to the
	// LOCAL one.
	WireInB  int64 `json:"wire_in_b,omitempty"`
	WireOutB int64 `json:"wire_out_b,omitempty"`

	// WallNS is the wall time of the step: node programs plus message
	// delivery, RoundStart to RoundEnd. BusyNS[s] is worker shard s's
	// busy time within the step (absent in per-node mode). Both are
	// zeroed (and wall_ns omitted) in canonical mode.
	WallNS int64   `json:"wall_ns,omitempty"`
	BusyNS []int64 `json:"busy_ns,omitempty"`

	// Layer-event fields (see peel.LayerEvent).
	PendantPaths  int `json:"pendant_paths,omitempty"`
	InternalPaths int `json:"internal_paths,omitempty"`
	NodesPeeled   int `json:"nodes_peeled,omitempty"`
	ForestCliques int `json:"forest_cliques,omitempty"`
	Remaining     int `json:"remaining,omitempty"`

	// TNS (schema v3) is the event's start offset in nanoseconds from
	// the Collector's creation: the round start for round events, the
	// launch for kernel events, the span start for phase events, the
	// snapshot instant for mem events. Omitted in canonical mode.
	TNS int64 `json:"t_ns,omitempty"`

	// Kernel-event fields (schema v3): one event per sharded-kernel
	// launch. Kernel names the kernel ("decide", "peel-measure",
	// "color-paths", "mis-components", "correction-setup"); Shards and
	// BusyNS carry the per-worker spans exactly as for engine rounds;
	// Items[s] counts the work items shard s processed (their sum is the
	// event's Nodes); WallNS is the whole launch. The imbalance ratio of
	// a launch is max(BusyNS)/mean(BusyNS) — cmd/tracestat computes it.
	Kernel       string  `json:"kernel,omitempty"`
	Items        []int64 `json:"items,omitempty"`
	ShardStartNS []int64 `json:"shard_start_ns,omitempty"`

	// Phase-event fields (schema v3): the span aggregates every round
	// event the closed phase saw. Runs/Rounds mirror PhaseSummary;
	// Messages and Volume reuse the round fields above; WallNS is the
	// wall-clock width of the span (SetPhase to SetPhase, so centralized
	// kernel time between engine runs is attributed too); P50NS/P99NS
	// are round-latency quantiles from the phase's streaming Hist.
	Runs   int   `json:"runs,omitempty"`
	Rounds int   `json:"rounds,omitempty"`
	P50NS  int64 `json:"p50_ns,omitempty"`
	P99NS  int64 `json:"p99_ns,omitempty"`

	// Mem-event fields (schema v3): a runtime.MemStats excerpt taken at
	// a phase boundary (never mid-round — ReadMemStats stops the world,
	// which is why the snapshots are opt-in, see SetMemStats).
	HeapAllocB   uint64 `json:"heap_alloc_b,omitempty"`
	HeapObjects  uint64 `json:"heap_objects,omitempty"`
	TotalAllocB  uint64 `json:"total_alloc_b,omitempty"`
	NumGC        uint32 `json:"num_gc,omitempty"`
	PauseTotalNS uint64 `json:"pause_total_ns,omitempty"`
}

// PhaseSummary aggregates every round event sharing one phase label.
type PhaseSummary struct {
	Phase    string
	Runs     int // engine runs that contributed rounds to this phase
	Rounds   int // round events (Init steps included)
	Messages int
	Volume   int
	MaxInbox int // high-water mark across the phase's rounds
	WallNS   int64
}

// Collector implements dist.RoundObserver (and dist.PhaseSetter): it
// stamps engine callbacks with wall times, keeps every event in memory,
// and optionally streams them as JSONL.
//
// One Collector may observe many engine runs sequentially (calls to
// SetPhase between runs label the trace); a single run's ShardStart and
// ShardEnd arrive concurrently from worker goroutines, which is safe
// because distinct shard indices write distinct pre-sized slots.
type Collector struct {
	mu     sync.Mutex
	now    func() time.Time // injectable for tests; time.Now by default
	enc    *json.Encoder    // nil when not tracing
	encErr error

	phase  string
	run    int // ordinal of the current/next engine run
	events []Event

	// canonical strips the schedule/hardware fields (shards, wall and
	// busy times) from events so traces of the same (graph, protocol,
	// seed, plan) are byte-identical across ExecModes and machines.
	canonical bool

	// In-flight round state. Written by the engine's driving goroutine;
	// shard slots are written by worker goroutines (distinct indices).
	roundStart time.Time
	shardStart []time.Time
	shardBusy  []int64

	// pendingFault holds the fault stats the engine reported for the
	// round whose RoundEnd has not arrived yet (FaultRound fires first,
	// on the same goroutine).
	pendingFault *dist.FaultStats

	// pendingWire holds the wire byte deltas a partitioned coordinator
	// reported for the in-flight round (WireRound fires just before the
	// matching RoundEnd, on the same goroutine, like FaultRound).
	pendingWire *[3]int64

	// Optional registry kept updated with running totals.
	reg *Registry

	// start anchors every TNS offset (schema v3); SetClock re-stamps it
	// so fake-clock tests get small deterministic offsets.
	start time.Time

	// memstats enables the opt-in per-phase heap/GC snapshots.
	memstats bool

	// Current-phase aggregation for the v3 phase timeline spans,
	// reset at every SetPhase transition (and flushed by Finish).
	phaseStart time.Time
	phRuns     int
	phLastRun  int
	phRounds   int
	phMessages int
	phVolume   int
	phEvents   int // round/layer/kernel events seen in this phase
	phHist     Hist

	// In-flight kernel launch (implements dist.KernelObserver; launches
	// never nest, see the interface's concurrency contract). Shard slots
	// are written lock-free by worker goroutines, exactly like the
	// engine-round shard slots above.
	kernelName  string
	kernelStart time.Time
	kShardStart []time.Time
	kBusy       []int64
	kItems      []int64
}

// NewCollector returns a Collector that keeps events in memory only.
func NewCollector() *Collector {
	c := &Collector{now: time.Now, phLastRun: -1}
	c.start = c.now()
	c.phaseStart = c.start
	return c
}

// SetTrace streams every subsequent event to w as JSONL (one JSON object
// per line). The caller owns w and any buffering/closing.
func (c *Collector) SetTrace(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enc = json.NewEncoder(w)
}

// SetClock substitutes the wall-clock source (tests use a fake clock to
// make timings deterministic) and re-anchors the TNS origin on it. Call
// it before any events arrive.
func (c *Collector) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
	c.start = c.now()
	c.phaseStart = c.start
}

// SetRegistry keeps reg's rounds_total / messages_total / volume_total
// counters and nodes_done gauge updated as events arrive.
func (c *Collector) SetRegistry(reg *Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg = reg
}

// SetPhase labels subsequent events with a phase name (implements
// dist.PhaseSetter). Callers set it between engine runs. A transition
// closes the previous phase's timeline span: if that phase produced any
// events, one "phase" record (and, with SetMemStats on, one "mem"
// snapshot) is emitted before the label changes — suppressed in
// canonical mode, where wall-clock spans have no meaning.
func (c *Collector) SetPhase(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if name == c.phase {
		return
	}
	c.closePhaseLocked()
	c.phase = name
}

// SetMemStats enables the per-phase heap/GC snapshots: at every phase
// boundary (SetPhase transitions and Finish) the Collector calls
// runtime.ReadMemStats — a stop-the-world operation, which is why the
// snapshots are opt-in and happen at phase boundaries only, never per
// round — and emits one "mem" record under the closing phase's label.
func (c *Collector) SetMemStats(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memstats = on
}

// Finish closes the trailing phase span (emitting its "phase" record
// and, with SetMemStats on, the final "mem" snapshot) and reports the
// first trace-write error. Call it once after the workload; any later
// events simply start a fresh span.
func (c *Collector) Finish() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closePhaseLocked()
	return c.encErr
}

// closePhaseLocked flushes the current phase's timeline span and resets
// the per-phase aggregation. Callers hold c.mu.
func (c *Collector) closePhaseLocked() {
	now := c.now()
	if c.phEvents > 0 && !c.canonical {
		c.emit(Event{
			V:        SchemaVersion,
			Kind:     KindPhase,
			Phase:    c.phase,
			Run:      c.run,
			Runs:     c.phRuns,
			Rounds:   c.phRounds,
			Messages: c.phMessages,
			Volume:   c.phVolume,
			WallNS:   now.Sub(c.phaseStart).Nanoseconds(),
			TNS:      c.phaseStart.Sub(c.start).Nanoseconds(),
			P50NS:    c.phHist.Quantile(0.5),
			P99NS:    c.phHist.Quantile(0.99),
		})
		if c.memstats {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			c.emit(Event{
				V:            SchemaVersion,
				Kind:         KindMem,
				Phase:        c.phase,
				TNS:          c.now().Sub(c.start).Nanoseconds(),
				HeapAllocB:   ms.HeapAlloc,
				HeapObjects:  ms.HeapObjects,
				TotalAllocB:  ms.TotalAlloc,
				NumGC:        ms.NumGC,
				PauseTotalNS: ms.PauseTotalNs,
			})
		}
	}
	c.phaseStart = now
	c.phRuns = 0
	c.phLastRun = -1
	c.phRounds = 0
	c.phMessages = 0
	c.phVolume = 0
	c.phEvents = 0
	c.phHist.Reset()
}

// SetCanonical switches the Collector to canonical traces: shard counts
// and wall/busy timings are zeroed in every subsequent event, leaving
// only fields that are pure functions of (graph, protocol, seed, fault
// plan). Two canonical traces of the same inputs are byte-identical
// regardless of ExecMode, GOMAXPROCS, or hardware — this is what the
// cross-mode determinism gate diffs.
func (c *Collector) SetCanonical(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.canonical = on
}

// Err reports the first trace-write error, if any.
func (c *Collector) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.encErr
}

// RunStart implements dist.RoundObserver.
func (c *Collector) RunStart(nodes, edges int) {}

// RoundStart implements dist.RoundObserver: it stamps the round's start
// time and pre-sizes the per-shard busy slots.
func (c *Collector) RoundStart(round, shards int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.roundStart = c.now()
	if cap(c.shardStart) < shards {
		c.shardStart = make([]time.Time, shards)
		c.shardBusy = make([]int64, shards)
	}
	c.shardStart = c.shardStart[:shards]
	c.shardBusy = c.shardBusy[:shards]
	for i := range c.shardBusy {
		c.shardBusy[i] = 0
	}
}

// ShardStart implements dist.RoundObserver. It may be called from worker
// goroutines; distinct shard indices touch distinct slots, so no lock is
// taken (the slices were sized under the lock in RoundStart, and the
// engine's WaitGroup orders these writes before RoundEnd's reads).
func (c *Collector) ShardStart(shard int) {
	c.shardStart[shard] = c.now()
}

// ShardEnd implements dist.RoundObserver; see ShardStart for the
// concurrency argument.
func (c *Collector) ShardEnd(shard int) {
	c.shardBusy[shard] = c.now().Sub(c.shardStart[shard]).Nanoseconds()
}

// FaultRound implements dist.FaultObserver: the engine reports the
// round's fault activity just before the matching RoundEnd, on the same
// goroutine, so the stats are parked until the round event materializes.
func (c *Collector) FaultRound(stats dist.FaultStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := stats
	c.pendingFault = &s
}

// WireRound implements dist.WireObserver: a partitioned coordinator
// reports the round's coordinator↔shard byte traffic just before the
// matching RoundEnd, on the same goroutine, so the deltas are parked
// until the round event materializes (exactly like FaultRound).
func (c *Collector) WireRound(round int, in, out int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pendingWire = &[3]int64{int64(round), in, out}
}

// RoundEnd implements dist.RoundObserver: it materializes the round's
// Event (folding in any fault stats the engine reported for this round),
// appends it to the in-memory table, and streams it if tracing.
func (c *Collector) RoundEnd(stats dist.RoundStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ev := Event{
		V:        SchemaVersion,
		Kind:     KindRound,
		Phase:    c.phase,
		Run:      c.run,
		Round:    stats.Round,
		Nodes:    stats.Nodes,
		Shards:   stats.Shards,
		Messages: stats.Messages,
		Volume:   stats.Volume,
		Done:     stats.Done,
		MaxInbox: stats.MaxInbox,
		WallNS:   c.now().Sub(c.roundStart).Nanoseconds(),
	}
	if len(c.shardBusy) > 0 {
		ev.BusyNS = append([]int64(nil), c.shardBusy...)
	}
	if f := c.pendingFault; f != nil && f.Round == stats.Round {
		ev.Dropped = f.Dropped
		ev.Duplicated = f.Duplicated
		ev.DeadLetters = f.DeadLetters
		ev.Stall = f.Stall
		if len(f.Crashed) > 0 {
			ev.Crashed = append([]graph.ID(nil), f.Crashed...)
		}
		c.pendingFault = nil
	}
	if w := c.pendingWire; w != nil && w[0] == int64(stats.Round) {
		ev.WireInB = w[1]
		ev.WireOutB = w[2]
		c.pendingWire = nil
	}
	if c.canonical {
		ev.Shards = 0
		ev.WallNS = 0
		ev.BusyNS = nil
		ev.WireInB = 0
		ev.WireOutB = 0
	} else {
		ev.TNS = c.roundStart.Sub(c.start).Nanoseconds()
	}
	// Per-phase aggregation for the v3 phase timeline span.
	if c.phLastRun != c.run {
		c.phLastRun = c.run
		c.phRuns++
	}
	c.phRounds++
	c.phMessages += stats.Messages
	c.phVolume += stats.Volume
	c.phHist.Record(ev.WallNS)
	if c.reg != nil {
		c.reg.Counter("rounds_total").Add(1)
		c.reg.Counter("messages_total").Add(int64(stats.Messages))
		c.reg.Counter("volume_total").Add(int64(stats.Volume))
		c.reg.Gauge("nodes_done").Set(int64(stats.Done))
	}
	c.emit(ev)
}

// RunEnd implements dist.RoundObserver: it closes out the run ordinal so
// the next engine run under this Collector is distinguishable.
func (c *Collector) RunEnd(rounds int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.run++
}

// KernelStart implements dist.KernelObserver (and, structurally,
// peel.KernelObserver): it stamps the launch and pre-sizes the
// per-shard slots, exactly as RoundStart does for engine rounds.
func (c *Collector) KernelStart(kernel string, shards int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.kernelName = kernel
	c.kernelStart = c.now()
	if cap(c.kShardStart) < shards {
		c.kShardStart = make([]time.Time, shards)
		c.kBusy = make([]int64, shards)
		c.kItems = make([]int64, shards)
	}
	c.kShardStart = c.kShardStart[:shards]
	c.kBusy = c.kBusy[:shards]
	c.kItems = c.kItems[:shards]
	for i := range c.kBusy {
		c.kShardStart[i] = time.Time{}
		c.kBusy[i] = 0
		c.kItems[i] = 0
	}
}

// KernelShardStart implements dist.KernelObserver. Like ShardStart it
// may be called from worker goroutines; distinct shard indices touch
// distinct slots sized under the lock in KernelStart, and the kernel's
// WaitGroup orders these writes before KernelEnd's reads.
//
//chordalvet:hotpath budget=0 per-shard kernel hooks must stay allocation-free
func (c *Collector) KernelShardStart(shard int) {
	c.kShardStart[shard] = c.now()
}

// KernelShardEnd implements dist.KernelObserver; see KernelShardStart
// for the concurrency argument.
//
//chordalvet:hotpath budget=0 per-shard kernel hooks must stay allocation-free
func (c *Collector) KernelShardEnd(shard, items int) {
	c.kBusy[shard] = c.now().Sub(c.kShardStart[shard]).Nanoseconds()
	c.kItems[shard] = int64(items)
}

// KernelEnd implements dist.KernelObserver: it materializes the
// launch's "kernel" event. Canonical mode drops kernel events entirely
// — shard counts and busy times are schedule/hardware measurements.
func (c *Collector) KernelEnd() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.canonical {
		return
	}
	end := c.now()
	ev := Event{
		V:      SchemaVersion,
		Kind:   KindKernel,
		Phase:  c.phase,
		Run:    c.run,
		Kernel: c.kernelName,
		Shards: len(c.kBusy),
		WallNS: end.Sub(c.kernelStart).Nanoseconds(),
		TNS:    c.kernelStart.Sub(c.start).Nanoseconds(),
		BusyNS: append([]int64(nil), c.kBusy...),
		Items:  append([]int64(nil), c.kItems...),
	}
	starts := make([]int64, len(c.kShardStart))
	total := 0
	for i, ts := range c.kShardStart {
		if !ts.IsZero() {
			starts[i] = ts.Sub(c.start).Nanoseconds()
		}
		total += int(c.kItems[i])
	}
	ev.ShardStartNS = starts
	ev.Nodes = total
	c.emit(ev)
}

// emit appends and streams one event. Callers hold c.mu.
func (c *Collector) emit(ev Event) {
	// Round, layer, and kernel events count as phase activity; the
	// phase/mem records closing a span must not re-open it.
	if ev.Kind == KindRound || ev.Kind == KindLayer || ev.Kind == KindKernel {
		c.phEvents++
	}
	c.events = append(c.events, ev)
	if c.enc != nil {
		if err := c.enc.Encode(ev); err != nil && c.encErr == nil {
			c.encErr = err
		}
	}
}

// Events returns a copy of the in-memory event table.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Phases aggregates the round events into one summary per phase label,
// in order of first appearance.
func (c *Collector) Phases() []PhaseSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []PhaseSummary
	index := make(map[string]int)
	lastRun := make(map[string]int)
	for _, ev := range c.events {
		if ev.Kind != KindRound {
			continue
		}
		i, ok := index[ev.Phase]
		if !ok {
			i = len(out)
			index[ev.Phase] = i
			out = append(out, PhaseSummary{Phase: ev.Phase})
			lastRun[ev.Phase] = -1
		}
		s := &out[i]
		if lastRun[ev.Phase] != ev.Run {
			lastRun[ev.Phase] = ev.Run
			s.Runs++
		}
		s.Rounds++
		s.Messages += ev.Messages
		s.Volume += ev.Volume
		s.WallNS += ev.WallNS
		if ev.MaxInbox > s.MaxInbox {
			s.MaxInbox = ev.MaxInbox
		}
	}
	return out
}

// Compile-time check: Collector is a dist observer, fault observer,
// phase setter, and kernel observer (the peel.KernelObserver check
// lives in peel.go beside the adapter).
var (
	_ dist.RoundObserver  = (*Collector)(nil)
	_ dist.FaultObserver  = (*Collector)(nil)
	_ dist.PhaseSetter    = (*Collector)(nil)
	_ dist.KernelObserver = (*Collector)(nil)
	_ dist.WireObserver   = (*Collector)(nil)
)
