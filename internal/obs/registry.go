package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically named total. Safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins instantaneous value. Safe for concurrent
// use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the last stored value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is an expvar-style named-metric registry for long runs:
// get-or-create Counters and Gauges, a sorted JSON snapshot, and an
// HTTP handler serving it. It is stdlib expvar minus the process-global
// namespace — every run owns its Registry, so tests and repeated
// experiment runs never collide on metric names.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the named counter, creating it at zero on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns all metric values keyed by name, with counters and
// gauges sharing one namespace (a name collision is the caller's bug).
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// WriteJSON writes the snapshot as a single JSON object with keys in
// sorted order, so successive snapshots diff cleanly.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, name := range names {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		key, err := json.Marshal(name)
		if err != nil {
			return err
		}
		if _, err := w.Write(key); err != nil {
			return err
		}
		if _, err := io.WriteString(w, ": "); err != nil {
			return err
		}
		val, err := json.Marshal(snap[name])
		if err != nil {
			return err
		}
		if _, err := w.Write(val); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

// Handler serves the registry snapshot as JSON, in the style of
// expvar's /debug/vars.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}
