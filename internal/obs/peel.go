package obs

import "repro/internal/peel"

// Compile-time check: the Collector's kernel hooks satisfy peel's
// structural copy of dist.KernelObserver too, so one Collector observes
// the peeling kernel alongside everything else.
var _ peel.KernelObserver = (*Collector)(nil)

// PeelTrace adapts the Collector into a peel.Options.Trace callback:
// each peeling iteration becomes one "layer" event in the trace, under
// the Collector's current phase. Layer events carry no timings — the
// peeling process is a centralized computation, and its per-iteration
// structure (paths by kind, nodes peeled, forest size) is what the
// round-cost analysis needs.
func (c *Collector) PeelTrace() func(peel.LayerEvent) {
	return func(le peel.LayerEvent) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.emit(Event{
			V:             SchemaVersion,
			Kind:          KindLayer,
			Phase:         c.phase,
			Run:           c.run,
			Round:         le.Iteration,
			PendantPaths:  le.PendantPaths,
			InternalPaths: le.InternalPaths,
			NodesPeeled:   le.NodesPeeled,
			ForestCliques: le.ForestCliques,
			Remaining:     le.Remaining,
		})
	}
}
