package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/peel"
)

func TestKernelSpanEvents(t *testing.T) {
	c := NewCollector()
	c.SetClock(fakeClock())
	c.SetPhase("stage")
	c.KernelStart("decide", 2)
	c.KernelShardStart(0)
	c.KernelShardEnd(0, 10)
	c.KernelShardStart(1)
	c.KernelShardEnd(1, 7)
	c.KernelEnd()

	events := c.Events()
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1 kernel event", len(events))
	}
	ev := events[0]
	if ev.Kind != KindKernel || ev.Kernel != "decide" {
		t.Fatalf("event = kind %q kernel %q, want kernel/decide", ev.Kind, ev.Kernel)
	}
	if ev.V != SchemaVersion || ev.Phase != "stage" {
		t.Errorf("v=%d phase=%q, want v=%d phase=stage", ev.V, ev.Phase, SchemaVersion)
	}
	if ev.Shards != 2 {
		t.Errorf("shards=%d, want 2", ev.Shards)
	}
	if len(ev.BusyNS) != 2 || ev.BusyNS[0] <= 0 || ev.BusyNS[1] <= 0 {
		t.Errorf("BusyNS=%v, want two positive entries", ev.BusyNS)
	}
	if len(ev.Items) != 2 || ev.Items[0] != 10 || ev.Items[1] != 7 {
		t.Errorf("Items=%v, want [10 7]", ev.Items)
	}
	if len(ev.ShardStartNS) != 2 {
		t.Errorf("ShardStartNS=%v, want two entries", ev.ShardStartNS)
	}
	if ev.Nodes != 17 {
		t.Errorf("Nodes=%d, want 17 (sum of items)", ev.Nodes)
	}
	if ev.WallNS <= 0 || ev.TNS <= 0 {
		t.Errorf("WallNS=%d TNS=%d, want both > 0 under the fake clock", ev.WallNS, ev.TNS)
	}
}

func TestKernelSpanUnvisitedShard(t *testing.T) {
	// A launch can be declared with more shard slots than workers that
	// actually run (n < workers after clamping never happens in core, but
	// the collector must not invent timings for untouched slots).
	c := NewCollector()
	c.SetClock(fakeClock())
	c.KernelStart("peel-measure", 3)
	c.KernelShardStart(1)
	c.KernelShardEnd(1, 4)
	c.KernelEnd()
	ev := c.Events()[0]
	if ev.BusyNS[0] != 0 || ev.BusyNS[2] != 0 || ev.BusyNS[1] <= 0 {
		t.Errorf("BusyNS=%v, want only shard 1 populated", ev.BusyNS)
	}
	if ev.ShardStartNS[0] != 0 || ev.ShardStartNS[2] != 0 {
		t.Errorf("ShardStartNS=%v, want zero for unvisited shards", ev.ShardStartNS)
	}
}

func TestPhaseBoundaryEvents(t *testing.T) {
	c := NewCollector()
	c.SetClock(fakeClock())
	c.SetPhase("a")
	resA := runPing(t, c, 6, 2)
	runPing(t, c, 6, 2)
	c.SetPhase("b")
	runPing(t, c, 6, 3)
	if err := c.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}

	var phases []Event
	for _, ev := range c.Events() {
		if ev.Kind == KindPhase {
			phases = append(phases, ev)
		}
	}
	if len(phases) != 2 {
		t.Fatalf("got %d phase events, want 2", len(phases))
	}
	a, b := phases[0], phases[1]
	if a.Phase != "a" || b.Phase != "b" {
		t.Fatalf("phase order %q,%q, want a,b", a.Phase, b.Phase)
	}
	if a.Runs != 2 || b.Runs != 1 {
		t.Errorf("runs = %d,%d, want 2,1", a.Runs, b.Runs)
	}
	if want := 2 * (resA.Rounds + 1); a.Rounds != want {
		t.Errorf("phase a rounds=%d, want %d", a.Rounds, want)
	}
	if a.Messages != 2*resA.Messages || a.Volume != 2*resA.Volume {
		t.Errorf("phase a messages/volume = %d/%d, want %d/%d",
			a.Messages, a.Volume, 2*resA.Messages, 2*resA.Volume)
	}
	for _, ev := range []Event{a, b} {
		if ev.WallNS <= 0 {
			t.Errorf("phase %q WallNS=%d, want > 0", ev.Phase, ev.WallNS)
		}
		if ev.P50NS <= 0 || ev.P99NS < ev.P50NS {
			t.Errorf("phase %q p50=%d p99=%d, want 0 < p50 <= p99", ev.Phase, ev.P50NS, ev.P99NS)
		}
	}
	// Phase a closes when SetPhase("b") is called: its span event must
	// precede every round of phase b in the stream.
	for i, ev := range c.Events() {
		if ev.Kind == KindPhase && ev.Phase == "a" {
			for _, later := range c.Events()[:i] {
				if later.Phase == "b" {
					t.Errorf("phase-a span emitted after phase-b rounds")
				}
			}
		}
	}
}

func TestFinishIdempotentAndEmptyPhaseSilent(t *testing.T) {
	c := NewCollector()
	c.SetClock(fakeClock())
	c.SetPhase("empty")
	c.SetPhase("also-empty")
	if err := c.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if err := c.Finish(); err != nil {
		t.Fatalf("second finish: %v", err)
	}
	if n := len(c.Events()); n != 0 {
		t.Fatalf("got %d events from empty phases, want 0", n)
	}
}

func TestMemStatsEvents(t *testing.T) {
	c := NewCollector()
	c.SetClock(fakeClock())
	c.SetMemStats(true)
	c.SetPhase("work")
	runPing(t, c, 6, 2)
	if err := c.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	var mems []Event
	for _, ev := range c.Events() {
		if ev.Kind == KindMem {
			mems = append(mems, ev)
		}
	}
	if len(mems) != 1 {
		t.Fatalf("got %d mem events, want 1", len(mems))
	}
	m := mems[0]
	if m.Phase != "work" {
		t.Errorf("mem phase=%q, want work", m.Phase)
	}
	if m.HeapAllocB == 0 || m.HeapObjects == 0 || m.TotalAllocB == 0 {
		t.Errorf("mem snapshot zeroed: heap=%d objects=%d total=%d",
			m.HeapAllocB, m.HeapObjects, m.TotalAllocB)
	}
}

func TestCanonicalSuppressesV3Records(t *testing.T) {
	var buf bytes.Buffer
	c := NewCollector()
	c.SetClock(fakeClock())
	c.SetTrace(&buf)
	c.SetCanonical(true)
	c.SetMemStats(true)
	c.SetPhase("p")
	runPing(t, c, 6, 2)
	c.KernelStart("decide", 1)
	c.KernelShardStart(0)
	c.KernelShardEnd(0, 6)
	c.KernelEnd()
	if err := c.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	for i, ev := range c.Events() {
		if ev.Kind != KindRound {
			t.Errorf("event %d: kind %q leaked into canonical trace", i, ev.Kind)
		}
		if ev.TNS != 0 || ev.WallNS != 0 || len(ev.BusyNS) != 0 {
			t.Errorf("event %d: timing fields in canonical trace: t=%d wall=%d busy=%v",
				i, ev.TNS, ev.WallNS, ev.BusyNS)
		}
	}
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		for _, key := range []string{"t_ns", "wall_ns", "kernel", "heap_alloc_b"} {
			if strings.Contains(line, key) {
				t.Errorf("canonical line %d contains %q: %s", i, key, line)
			}
		}
	}
}

func TestV3TraceOmitsEmptyFields(t *testing.T) {
	// v2 readers must keep parsing v3 traces: round records gain only
	// t_ns, and kernel/phase/mem fields never appear on them.
	var buf bytes.Buffer
	c := NewCollector()
	c.SetClock(fakeClock())
	c.SetTrace(&buf)
	c.SetPhase("ping")
	runPing(t, c, 6, 2)
	if err := c.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	for i, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if m["kind"] != "round" && m["kind"] != "phase" {
			continue
		}
		for _, key := range []string{"kernel", "items", "shard_start_ns", "heap_alloc_b", "num_gc"} {
			if _, ok := m[key]; ok && m["kind"] == "round" {
				t.Errorf("line %d: round record carries v3 field %q", i, key)
			}
		}
	}
}

// TestPipelineKernelCoverage asserts the acceptance-criteria list: every
// sharded kernel in the coloring and MIS pipelines emits per-worker
// spans through one attached Collector. Worker counts are forced above
// one so the parallel shard-hook paths run even on single-CPU machines
// (the sequential paths emit the same spans with one shard).
func TestPipelineKernelCoverage(t *testing.T) {
	oldStage, oldPeel, oldDecide := core.DefaultStageWorkers, peel.DefaultWorkers, core.DefaultDecideWorkers
	core.DefaultStageWorkers, peel.DefaultWorkers, core.DefaultDecideWorkers = 3, 3, 3
	defer func() {
		core.DefaultStageWorkers, peel.DefaultWorkers, core.DefaultDecideWorkers = oldStage, oldPeel, oldDecide
	}()
	g := gen.RandomChordal(300, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 11)
	c := NewCollector()
	c.SetClock(fakeClock())
	c.SetPhase("color")
	if _, err := core.ColorChordalDistributedObserved(g, 0.5, c, nil); err != nil {
		t.Fatalf("color: %v", err)
	}
	c.SetPhase("mis")
	if _, err := core.MISChordalWithOptions(g, 0.5, core.ChordalMISOptions{Observer: c}); err != nil {
		t.Fatalf("mis: %v", err)
	}
	if err := c.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}

	seen := map[string]int{}
	for _, ev := range c.Events() {
		if ev.Kind != KindKernel {
			continue
		}
		seen[ev.Kernel]++
		if ev.Shards < 1 || len(ev.BusyNS) != ev.Shards || len(ev.Items) != ev.Shards {
			t.Errorf("kernel %q: shards=%d busy=%v items=%v", ev.Kernel, ev.Shards, ev.BusyNS, ev.Items)
		}
	}
	for _, kernel := range []string{"decide", "peel-measure", "color-paths", "correction-setup", "mis-components"} {
		if seen[kernel] == 0 {
			t.Errorf("kernel %q emitted no spans (saw %v)", kernel, seen)
		}
	}
}

// TestObservedPipelineDeterminism re-checks the repo's core invariant
// for the new hooks: attaching a metrics collector never changes the
// computed coloring.
func TestObservedPipelineDeterminism(t *testing.T) {
	g := gen.RandomChordal(200, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 3)
	plain, err := core.ColorChordal(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector()
	c.SetClock(fakeClock())
	observed, err := core.ColorChordalObserved(g, 0.5, c)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ColorsUsed != observed.ColorsUsed || len(plain.Colors) != len(observed.Colors) {
		t.Fatalf("observed run diverged: %d/%d colors vs %d/%d",
			observed.ColorsUsed, len(observed.Colors), plain.ColorsUsed, len(plain.Colors))
	}
	for v, col := range plain.Colors {
		if observed.Colors[v] != col {
			t.Fatalf("node %d: observed color %d, plain %d", v, observed.Colors[v], col)
		}
	}
}
