package obs

import (
	"math"
	"testing"
)

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty hist not all-zero: count=%d sum=%d min=%d max=%d mean=%d",
			h.Count(), h.Sum(), h.Min(), h.Max(), h.Mean())
	}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if q := h.Quantile(p); q != 0 {
			t.Errorf("empty Quantile(%v)=%d, want 0", p, q)
		}
	}
}

func TestHistSingleSample(t *testing.T) {
	var h Hist
	h.Record(12345)
	if h.Count() != 1 || h.Sum() != 12345 || h.Min() != 12345 || h.Max() != 12345 {
		t.Fatalf("count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	// Every quantile of a one-sample distribution is that sample: the
	// bucket interpolation must clamp to [min, max].
	for _, p := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if q := h.Quantile(p); q != 12345 {
			t.Errorf("Quantile(%v)=%d, want 12345", p, q)
		}
	}
}

func TestHistZeroAndNegative(t *testing.T) {
	var h Hist
	h.Record(0)
	h.Record(-7) // clamps to 0
	if h.Count() != 2 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("Quantile(0.5)=%d, want 0", q)
	}
}

// TestHistBucketBoundaries records values that straddle every power-of-2
// boundary in a small range and checks the estimates never escape the
// true value's bucket (the log-bucket error guarantee) and that exact
// min/max survive.
func TestHistBucketBoundaries(t *testing.T) {
	var h Hist
	vals := []int64{1, 2, 3, 4, 7, 8, 15, 16, 31, 32}
	for _, v := range vals {
		h.Record(v)
	}
	if h.Min() != 1 || h.Max() != 32 {
		t.Fatalf("min=%d max=%d, want 1, 32", h.Min(), h.Max())
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0)=%d, want exact min 1", got)
	}
	if got := h.Quantile(1); got != 32 {
		t.Errorf("Quantile(1)=%d, want exact max 32", got)
	}
	// The median of the 10 samples is between 7 and 8; the log-bucket
	// estimate may land anywhere in [4, 15] (the buckets holding ranks
	// 5 and 6) but no further.
	if got := h.Quantile(0.5); got < 4 || got > 15 {
		t.Errorf("Quantile(0.5)=%d, want within [4, 15]", got)
	}
	// bucketBounds sanity at the boundaries themselves.
	for b, want := range map[int][2]int64{0: {0, 0}, 1: {1, 1}, 2: {2, 3}, 3: {4, 7}, 4: {8, 15}} {
		lo, hi := bucketBounds(b)
		if lo != want[0] || hi != want[1] {
			t.Errorf("bucketBounds(%d)=[%d,%d], want [%d,%d]", b, lo, hi, want[0], want[1])
		}
	}
}

// TestHistMergeDisjointRanges merges a low-range and a high-range
// histogram and checks the merged distribution places low quantiles in
// the low range and high quantiles in the high range.
func TestHistMergeDisjointRanges(t *testing.T) {
	var lo, hi Hist
	for i := int64(1); i <= 100; i++ {
		lo.Record(i)
	}
	for i := int64(1_000_000); i < 1_000_100; i++ {
		hi.Record(i)
	}
	merged := lo // copy
	merged.Merge(&hi)
	if merged.Count() != 200 {
		t.Fatalf("merged count=%d, want 200", merged.Count())
	}
	if merged.Min() != 1 || merged.Max() != 1_000_099 {
		t.Fatalf("merged min=%d max=%d", merged.Min(), merged.Max())
	}
	if want := lo.Sum() + hi.Sum(); merged.Sum() != want {
		t.Fatalf("merged sum=%d, want %d", merged.Sum(), want)
	}
	if q := merged.Quantile(0.25); q > 128 {
		t.Errorf("Quantile(0.25)=%d, want in the low range (≤128)", q)
	}
	if q := merged.Quantile(0.75); q < 524288 {
		t.Errorf("Quantile(0.75)=%d, want in the high range (≥2^19)", q)
	}
	// Merging into an empty histogram preserves min/max.
	var empty Hist
	empty.Merge(&lo)
	if empty.Min() != 1 || empty.Max() != 100 || empty.Count() != 100 {
		t.Errorf("merge into empty: min=%d max=%d count=%d", empty.Min(), empty.Max(), empty.Count())
	}
}

// TestHistExtremeValues drives Record and Quantile through the int64
// extremes: MinInt64 must clamp to bucket 0 like any negative span, and
// MaxInt64 must land in the top bucket (63) with no overflow anywhere —
// bucketBounds(63) sits right at the int64 ceiling, so this is the
// bucket where any overflow arithmetic would surface as a panic or a
// negative estimate.
func TestHistExtremeValues(t *testing.T) {
	var h Hist
	h.Record(math.MinInt64) // negative span: clamps to 0
	h.Record(math.MaxInt64)
	if h.Count() != 2 || h.Min() != 0 || h.Max() != math.MaxInt64 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if h.counts[0] != 1 || h.counts[63] != 1 {
		t.Fatalf("bucket spread: counts[0]=%d counts[63]=%d", h.counts[0], h.counts[63])
	}
	lo, hi := bucketBounds(63)
	if lo != int64(1)<<62 || hi != math.MaxInt64 {
		t.Fatalf("bucketBounds(63)=[%d,%d], want [2^62, MaxInt64]", lo, hi)
	}
	for _, p := range []float64{0, 0.5, 1} {
		q := h.Quantile(p)
		if q < 0 || q > math.MaxInt64 {
			t.Fatalf("Quantile(%v)=%d escaped [0, MaxInt64]", p, q)
		}
	}
	if h.Quantile(1) != math.MaxInt64 {
		t.Errorf("Quantile(1)=%d, want MaxInt64", h.Quantile(1))
	}
}

// TestHistQuantileArgumentClamps: p outside [0, 1] clamps, and a NaN p —
// every comparison against NaN is false — must still return a value
// inside the observed range instead of panicking.
func TestHistQuantileArgumentClamps(t *testing.T) {
	var h Hist
	for _, v := range []int64{5, 10, 20} {
		h.Record(v)
	}
	if got, want := h.Quantile(-3), h.Quantile(0); got != want {
		t.Errorf("Quantile(-3)=%d, want Quantile(0)=%d", got, want)
	}
	if got, want := h.Quantile(7), h.Quantile(1); got != want {
		t.Errorf("Quantile(7)=%d, want Quantile(1)=%d", got, want)
	}
	if q := h.Quantile(math.NaN()); q < h.Min() || q > h.Max() {
		t.Errorf("Quantile(NaN)=%d escaped [%d, %d]", q, h.Min(), h.Max())
	}
}

// TestHistResetAndEmptyMerges: Reset returns to the ready zero state,
// merging an empty histogram is the identity, and merging into an empty
// one copies the source — the three identities the per-phase collector
// relies on when a phase records nothing.
func TestHistResetAndEmptyMerges(t *testing.T) {
	var h Hist
	h.Record(42)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("reset hist not empty: count=%d sum=%d", h.Count(), h.Sum())
	}
	h.Record(9)
	var empty Hist
	before := h
	h.Merge(&empty) // identity
	if h != before {
		t.Errorf("merging an empty hist changed state: %+v vs %+v", h, before)
	}
	var both, alsoEmpty Hist
	both.Merge(&alsoEmpty) // empty ∪ empty stays empty and quiet
	if both.Count() != 0 || both.Quantile(0.5) != 0 {
		t.Errorf("empty-empty merge: count=%d q50=%d", both.Count(), both.Quantile(0.5))
	}
	both.Merge(&h) // empty target copies source, including exact min
	if both.Count() != 1 || both.Min() != 9 || both.Max() != 9 {
		t.Errorf("merge into empty: count=%d min=%d max=%d", both.Count(), both.Min(), both.Max())
	}
}

// TestHistQuantileMonotone sweeps p over a spread-out deterministic
// sample set and requires Quantile to be nondecreasing — the property
// every latency table (p50 ≤ p90 ≤ p99) depends on.
func TestHistQuantileMonotone(t *testing.T) {
	var h Hist
	v := int64(1)
	for i := 0; i < 1000; i++ {
		// Multiplicative walk over several orders of magnitude,
		// deterministic so the test never flakes.
		v = (v*2654435761 + 1) % 10_000_000
		h.Record(v)
	}
	prev := int64(-1)
	for p := 0.0; p <= 1.0; p += 0.005 {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile not monotone: p=%v gives %d after %d", p, q, prev)
		}
		prev = q
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("Quantile(1)=%d, want max %d", h.Quantile(1), h.Max())
	}
}
