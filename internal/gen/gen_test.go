package gen

import (
	"testing"

	"repro/internal/chordal"
	"repro/internal/graph"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Fatalf("path(5): n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.Distance(0, 4) != 4 {
		t.Fatal("path distance wrong")
	}
	if g.MaxDegree() != 2 {
		t.Fatal("path max degree wrong")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	if g.NumEdges() != 6 {
		t.Fatalf("cycle(6) edges = %d", g.NumEdges())
	}
	for _, v := range g.Nodes() {
		if g.Degree(v) != 2 {
			t.Fatalf("cycle degree(%d) = %d", v, g.Degree(v))
		}
	}
	if g.Distance(0, 3) != 3 {
		t.Fatal("cycle distance wrong")
	}
}

func TestStarAndComplete(t *testing.T) {
	s := Star(7)
	if s.Degree(0) != 6 || s.NumEdges() != 6 {
		t.Fatalf("star: deg(0)=%d m=%d", s.Degree(0), s.NumEdges())
	}
	k := Complete(5)
	if k.NumEdges() != 10 {
		t.Fatalf("K5 edges = %d", k.NumEdges())
	}
	if !k.IsClique(k.Nodes()) {
		t.Fatal("K5 is not a clique")
	}
}

func TestTreeIsTree(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := Tree(40, seed)
		if g.NumEdges() != 39 {
			t.Fatalf("tree edges = %d", g.NumEdges())
		}
		if len(g.Components()) != 1 {
			t.Fatal("tree not connected")
		}
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 2)
	if g.NumNodes() != 5+10 {
		t.Fatalf("caterpillar nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 4+10 {
		t.Fatalf("caterpillar edges = %d", g.NumEdges())
	}
	if len(g.Components()) != 1 {
		t.Fatal("caterpillar not connected")
	}
}

func TestFromIntervalsMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		ivs := RandomIntervals(30, 10, 2, seed)
		g := FromIntervals(ivs)
		for i := range ivs {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				overlap := a.Lo <= b.Hi && b.Lo <= a.Hi
				if g.HasEdge(a.Node, b.Node) != overlap {
					t.Fatalf("seed %d: edge %d-%d = %v, overlap = %v",
						seed, a.Node, b.Node, g.HasEdge(a.Node, b.Node), overlap)
				}
			}
		}
	}
}

func TestUnitIntervals(t *testing.T) {
	ivs := UnitIntervals(20, 15, 1)
	for _, iv := range ivs {
		if d := iv.Hi - iv.Lo; d < 0.999999 || d > 1.000001 {
			t.Fatalf("interval %v is not unit length", iv)
		}
	}
}

func TestRandomChordalConnected(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := RandomChordal(60, ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.3}, seed)
		if g.NumNodes() != 60 {
			t.Fatalf("n = %d", g.NumNodes())
		}
		if len(g.Components()) != 1 {
			t.Fatal("random chordal not connected")
		}
	}
}

func TestRandomChordalSubtree(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := RandomChordalSubtree(400, 3, 6, seed)
		if g.NumNodes() != 400 {
			t.Fatalf("seed %d: n = %d", seed, g.NumNodes())
		}
		if len(g.Components()) != 1 {
			t.Fatalf("seed %d: not connected", seed)
		}
		if _, err := chordal.PEO(g); err != nil {
			t.Fatalf("seed %d: not chordal: %v", seed, err)
		}
	}
}

func TestRandomChordalSubtreeDeterministic(t *testing.T) {
	a := RandomChordalSubtree(300, 4, 5, 42)
	b := RandomChordalSubtree(300, 4, 5, 42)
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape differs: (%d,%d) vs (%d,%d)",
			a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	for _, v := range a.Nodes() {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("degree(%d) differs", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("adjacency of %d differs", v)
			}
		}
	}
}

func TestRandomChordalSubtreeLinearEdges(t *testing.T) {
	// Edge count must stay O(n) for fixed maxLen/capacity: every vertex
	// joins at most maxLen+1 host nodes, each already carrying at most
	// capacity + host-degree members.
	g := RandomChordalSubtree(20000, 3, 6, 1)
	if m := g.NumEdges(); m > 20*20000 {
		t.Fatalf("edge count %d not linear in n", m)
	}
}

func TestKTreeShape(t *testing.T) {
	g := KTree(30, 3, 7)
	if g.NumNodes() != 30 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	// A k-tree on n nodes has kn - k(k+1)/2 edges.
	want := 3*30 - 3*4/2
	if g.NumEdges() != want {
		t.Fatalf("k-tree edges = %d, want %d", g.NumEdges(), want)
	}
	if len(g.Components()) != 1 {
		t.Fatal("k-tree not connected")
	}
}

func TestKTreeSmallN(t *testing.T) {
	g := KTree(3, 5, 1)
	if !g.Equal(Complete(3)) {
		t.Fatal("KTree with n < k+1 should be complete")
	}
}

func TestGNPDeterministic(t *testing.T) {
	a := GNP(30, 0.3, 42)
	b := GNP(30, 0.3, 42)
	if !a.Equal(b) {
		t.Fatal("GNP not deterministic for same seed")
	}
}

func TestRelabelRandomPreservesStructure(t *testing.T) {
	g := RandomChordal(40, ChordalOpts{MaxCliqueSize: 3, AttachFull: 0.5}, 3)
	h, mapping := RelabelRandom(g, 99)
	if h.NumNodes() != g.NumNodes() || h.NumEdges() != g.NumEdges() {
		t.Fatal("relabel changed size")
	}
	for _, e := range g.Edges() {
		if !h.HasEdge(mapping[e[0]], mapping[e[1]]) {
			t.Fatalf("edge %v lost under relabelling", e)
		}
	}
	// Mapping is a bijection over the same ID set.
	seen := make(map[graph.ID]bool)
	for _, to := range mapping {
		if seen[to] {
			t.Fatal("mapping not injective")
		}
		seen[to] = true
		if !g.HasNode(to) {
			t.Fatal("mapping leaves original ID universe")
		}
	}
}

func TestHubTreeShape(t *testing.T) {
	g := HubTree(3, 10)
	if len(g.Components()) != 1 {
		t.Fatal("hub tree not connected")
	}
	// 2^(depth+1)-1 hubs of 4 nodes; edges: 2^(depth+1)-2 internal chains
	// plus one dangling chain, 10 nodes each.
	hubs := 1<<4 - 1
	chains := hubs - 1 + 1
	want := hubs*4 + chains*10
	if g.NumNodes() != want {
		t.Fatalf("n = %d, want %d", g.NumNodes(), want)
	}
}

func TestHubTreeIsChordalViaForest(t *testing.T) {
	// Indirect chordality check without importing chordal (cycle risk):
	// every 4-cycle must have a chord; sample via neighbors-of-neighbors.
	g := HubTree(2, 8)
	for _, v := range g.Nodes() {
		nbrs := g.Neighbors(v)
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				a, b := nbrs[i], nbrs[j]
				if g.HasEdge(a, b) {
					continue
				}
				// Common neighbors of a and b other than v must induce a
				// chord with v or each other... cheap spot check: any
				// common neighbor w of a,b with w != v and no chord
				// (v-w, a-b) would witness a chordless C4.
				for _, w := range g.Neighbors(a) {
					if w != v && g.HasEdge(w, b) && !g.HasEdge(v, w) {
						t.Fatalf("chordless C4: %d-%d-%d-%d", v, a, w, b)
					}
				}
			}
		}
	}
}
