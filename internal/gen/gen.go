// Package gen builds the workloads used by the tests, examples, and
// benchmarks: basic families (paths, cycles, trees, stars, caterpillars),
// interval graphs from explicit or random interval models, random chordal
// graphs via simplicial construction, k-trees, and Erdős–Rényi graphs as a
// non-chordal control.
//
// Every randomized generator takes an explicit seed so workloads are
// reproducible.
package gen

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Path returns the path v0 - v1 - ... - v(n-1).
func Path(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.ID(i))
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(graph.ID(i), graph.ID(i+1))
	}
	return g
}

// Cycle returns the cycle on n nodes (n >= 3 for an actual cycle).
func Cycle(n int) *graph.Graph {
	g := Path(n)
	if n >= 3 {
		g.AddEdge(graph.ID(n-1), 0)
	}
	return g
}

// Star returns the star with center 0 and leaves 1..n-1.
func Star(n int) *graph.Graph {
	g := graph.New()
	g.AddNode(0)
	for i := 1; i < n; i++ {
		g.AddEdge(0, graph.ID(i))
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.ID(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(graph.ID(i), graph.ID(j))
		}
	}
	return g
}

// Tree returns a random tree on n nodes: node i attaches to a uniformly
// random earlier node.
func Tree(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	if n <= 0 {
		return g
	}
	g.AddNode(0)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.ID(i), graph.ID(rng.Intn(i)))
	}
	return g
}

// Caterpillar returns a caterpillar tree: a spine path of the given length
// with legs leaves attached to every spine node.
func Caterpillar(spine, legs int) *graph.Graph {
	g := Path(spine)
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			g.AddEdge(graph.ID(i), graph.ID(next))
			next++
		}
	}
	return g
}

// Interval is a closed interval [Lo, Hi] on the line, identified with a
// graph node.
type Interval struct {
	Node   graph.ID
	Lo, Hi float64
}

// FromIntervals returns the intersection graph of the given intervals.
func FromIntervals(ivs []Interval) *graph.Graph {
	g := graph.New()
	for _, iv := range ivs {
		g.AddNode(iv.Node)
	}
	sorted := make([]Interval, len(ivs))
	copy(sorted, ivs)
	sort.Slice(sorted, func(i, j int) bool {
		switch {
		case sorted[i].Lo < sorted[j].Lo:
			return true
		case sorted[j].Lo < sorted[i].Lo:
			return false
		}
		return sorted[i].Node < sorted[j].Node
	})
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j].Lo > sorted[i].Hi {
				break
			}
			g.AddEdge(sorted[i].Node, sorted[j].Node)
		}
	}
	return g
}

// RandomIntervals samples n intervals with left endpoints uniform in
// [0, span) and lengths uniform in (0, maxLen].
func RandomIntervals(n int, span, maxLen float64, seed int64) []Interval {
	rng := rand.New(rand.NewSource(seed))
	ivs := make([]Interval, n)
	for i := range ivs {
		lo := rng.Float64() * span
		ivs[i] = Interval{Node: graph.ID(i), Lo: lo, Hi: lo + rng.Float64()*maxLen}
	}
	return ivs
}

// RandomInterval returns a random interval graph on n nodes. Density grows
// with maxLen/span.
func RandomInterval(n int, span, maxLen float64, seed int64) *graph.Graph {
	return FromIntervals(RandomIntervals(n, span, maxLen, seed))
}

// UnitIntervals samples n unit-length intervals with left endpoints uniform
// in [0, span).
func UnitIntervals(n int, span float64, seed int64) []Interval {
	rng := rand.New(rand.NewSource(seed))
	ivs := make([]Interval, n)
	for i := range ivs {
		lo := rng.Float64() * span
		ivs[i] = Interval{Node: graph.ID(i), Lo: lo, Hi: lo + 1}
	}
	return ivs
}

// ChordalOpts controls RandomChordal.
type ChordalOpts struct {
	// MaxCliqueSize bounds the size of the clique each new node attaches
	// to (and hence ω(G) ≤ MaxCliqueSize+1). Values < 1 mean 1.
	MaxCliqueSize int
	// AttachFull, in [0,1], is the probability that a new node attaches to
	// a full random maximal clique rather than a random subset of one.
	// Larger values produce denser graphs.
	AttachFull float64
}

// RandomChordal returns a random connected chordal graph on n nodes using
// incremental simplicial construction: node i attaches to a clique subset
// of the current graph, so the reverse insertion order is a perfect
// elimination ordering and the result is chordal by construction.
func RandomChordal(n int, opts ChordalOpts, seed int64) *graph.Graph {
	if opts.MaxCliqueSize < 1 {
		opts.MaxCliqueSize = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	if n <= 0 {
		return g
	}
	g.AddNode(0)
	// cliques tracks a growing list of cliques new nodes may attach to.
	cliques := []graph.Set{graph.NewSet(0)}
	for i := 1; i < n; i++ {
		v := graph.ID(i)
		base := cliques[rng.Intn(len(cliques))]
		var attach graph.Set
		if rng.Float64() < opts.AttachFull || len(base) == 1 {
			attach = base.Clone()
		} else {
			// Random nonempty subset of base.
			for _, u := range base {
				if rng.Float64() < 0.5 {
					attach = append(attach, u)
				}
			}
			if len(attach) == 0 {
				attach = graph.Set{base[rng.Intn(len(base))]}
			}
		}
		if len(attach) > opts.MaxCliqueSize {
			attach = attach[:opts.MaxCliqueSize]
		}
		g.AddNode(v)
		for _, u := range attach {
			g.AddEdge(v, u)
		}
		cliques = append(cliques, graph.NewSet(append(attach.Clone(), v)...))
	}
	return g
}

// RandomChordalSubtree returns a random connected chordal graph on n
// nodes via the linear-time subtree-intersection construction: chordal
// graphs are exactly the intersection graphs of subtrees of a tree
// (Gavril; see also Ekim–Shalom–Şeker, arXiv:1904.04916, for the
// linear-time random model). A host tree on n nodes is grown as a
// random recursive tree (node i attaches to a uniform earlier node);
// vertex i's subtree is the upward path from host node i of length
// 2 + rng.Intn(maxLen), truncated early when the next host node is
// already carrying `capacity` subtrees. The first upward step is always
// taken, so vertex i intersects vertex parent(i)'s subtree and the
// result is connected. Each host node carries O(capacity + children)
// subtrees, so the total construction and edge count are O(n) for fixed
// maxLen and capacity — this is the generator behind the million-node
// pipeline benchmarks, where the simplicial-construction generator's
// Set cloning is too slow.
func RandomChordalSubtree(n, maxLen, capacity int, seed int64) *graph.Graph {
	if maxLen < 1 {
		maxLen = 1
	}
	if capacity < 2 {
		capacity = 2
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	if n <= 0 {
		return g
	}
	g.AddNode(0)
	parent := make([]int32, n) // host-tree parent; parent[0] = -1
	parent[0] = -1
	// members[t] lists the vertices whose subtree covers host node t;
	// every pair sharing a host node is adjacent (and, by the Helly
	// property of subtrees, those member sets are exactly the maximal
	// cliques' building blocks).
	members := make([][]int32, n)
	members[0] = append(members[0], 0)
	for i := 1; i < n; i++ {
		p := int32(rng.Intn(i))
		parent[i] = p
		v := graph.ID(i)
		g.AddNode(v)
		members[i] = append(members[i], int32(i))
		length := 2 + rng.Intn(maxLen)
		at := int32(i)
		for step := 1; step < length; step++ {
			at = parent[at]
			if at < 0 {
				break
			}
			// The first step is unconditional (connectivity); later
			// steps respect the per-host-node capacity so clique sizes
			// stay bounded by capacity plus the host node's degree.
			if step > 1 && len(members[at]) >= capacity {
				break
			}
			for _, u := range members[at] {
				g.AddEdge(v, graph.ID(u))
			}
			members[at] = append(members[at], int32(i))
		}
	}
	return g
}

// KTree returns a random k-tree on n nodes (n >= k+1): start from K_{k+1},
// then each new node attaches to a random existing k-clique. k-trees are
// chordal with ω = k+1.
func KTree(n, k int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	if n < k+1 {
		return Complete(n)
	}
	g := Complete(k + 1)
	// Seed k-cliques: all k-subsets of the initial K_{k+1}.
	var cliques []graph.Set
	initial := make([]graph.ID, k+1)
	for i := range initial {
		initial[i] = graph.ID(i)
	}
	for skip := 0; skip <= k; skip++ {
		var c graph.Set
		for i, v := range initial {
			if i != skip {
				c = append(c, v)
			}
		}
		cliques = append(cliques, c)
	}
	for i := k + 1; i < n; i++ {
		v := graph.ID(i)
		base := cliques[rng.Intn(len(cliques))]
		g.AddNode(v)
		for _, u := range base {
			g.AddEdge(v, u)
		}
		// New k-cliques: base with one vertex swapped for v.
		for skip := range base {
			c := make(graph.Set, 0, k)
			for j, u := range base {
				if j != skip {
					c = append(c, u)
				}
			}
			c = graph.NewSet(append(c, v)...)
			cliques = append(cliques, c)
		}
	}
	return g
}

// HubTree builds a chordal graph shaped like a complete binary tree of
// K4 hubs whose tree edges are chains of the given length. Hubs are
// forced to be degree-3 clique-forest vertices by weight-3 intersections
// (each chain head shares three nodes with its hub), so the chains are
// exactly the forest's internal/pendant paths. Pendant-only peeling must
// work inward one tree level at a time, while internal-path peeling
// removes every chain at once — the workload behind the E4 ablation.
func HubTree(depth, chainLen int) *graph.Graph {
	g := graph.New()
	next := graph.ID(0)
	alloc := func() graph.ID {
		v := next
		next++
		return v
	}
	// newHub creates a K4 and returns its three arm sockets, each a
	// distinct 3-subset of the hub.
	type hub struct {
		sockets [3][3]graph.ID
		used    int
	}
	newHub := func() *hub {
		a, b, c, d := alloc(), alloc(), alloc(), alloc()
		for _, e := range [][2]graph.ID{{a, b}, {a, c}, {a, d}, {b, c}, {b, d}, {c, d}} {
			g.AddEdge(e[0], e[1])
		}
		return &hub{sockets: [3][3]graph.ID{{a, b, c}, {a, b, d}, {a, c, d}}}
	}
	// chain connects two sockets (or dangles from one when to == nil).
	connect := func(from *hub, to *hub) {
		s := from.sockets[from.used]
		from.used++
		prev := alloc()
		for _, u := range s {
			g.AddEdge(prev, u)
		}
		for i := 1; i < chainLen; i++ {
			cur := alloc()
			g.AddEdge(prev, cur)
			prev = cur
		}
		if to != nil {
			t := to.sockets[to.used]
			to.used++
			for _, u := range t {
				g.AddEdge(prev, u)
			}
		}
	}
	var build func(level int) *hub
	build = func(level int) *hub {
		h := newHub()
		if level < depth {
			left := build(level + 1)
			connect(h, left)
			right := build(level + 1)
			connect(h, right)
		}
		return h
	}
	root := build(0)
	connect(root, nil) // a dangling chain keeps the root binary-free too
	return g
}

// GNP returns an Erdős–Rényi G(n, p) graph — generally not chordal; used
// as a negative control in tests.
func GNP(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddNode(graph.ID(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(graph.ID(i), graph.ID(j))
			}
		}
	}
	return g
}

// RelabelRandom returns an isomorphic copy of g with node IDs permuted
// uniformly at random (over the same ID set). The distributed algorithms'
// tie-breaking depends on IDs, so tests use this to check that correctness
// does not depend on any particular labelling.
func RelabelRandom(g *graph.Graph, seed int64) (*graph.Graph, map[graph.ID]graph.ID) {
	rng := rand.New(rand.NewSource(seed))
	nodes := g.Nodes()
	perm := make([]graph.ID, len(nodes))
	copy(perm, nodes)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	mapping := make(map[graph.ID]graph.ID, len(nodes))
	for i, v := range nodes {
		mapping[v] = perm[i]
	}
	out := graph.New()
	for _, v := range nodes {
		out.AddNode(mapping[v])
	}
	for _, e := range g.Edges() {
		out.AddEdge(mapping[e[0]], mapping[e[1]])
	}
	return out, mapping
}
