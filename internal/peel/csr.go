package peel

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cliquetree"
	"repro/internal/graph"
)

// This file is the CSR engine behind Run: the peeling process executed
// entirely in snapshot-index space. One graph.Indexed snapshot is taken
// up front; each iteration rebuilds the clique forest over an alive mask
// (cliquetree.Builder), extracts the maximal binary paths with
// plain-array versions of the paths.go routines, and measures every path
// (capped diameter, independence number, subpath nodes) with per-worker
// epoch-stamped scratch. Path measurement is a pure per-path function of
// the snapshot, the alive mask, and the forest, so paths shard over
// workers into deterministic per-path result slots: outputs are
// bit-identical for every worker count and match the map-backed
// reference implementation (runReference) record for record.

// DefaultWorkers is the worker count Run uses when Options.Workers is
// zero: 0 picks GOMAXPROCS, 1 runs sequentially, n uses n workers. The
// CLIs expose it as -workers.
var DefaultWorkers = 0

func resolveWorkers(w, tasks int) int {
	if w == 0 {
		w = DefaultWorkers
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// pathIdx is a maximal binary path in clique-id space (cliquetree.Path
// without the materialized int slices).
type pathIdx struct {
	off, ln                int32 // clique ids at engine.pathStore[off:off+ln]
	kind                   cliquetree.PathKind
	attachStart, attachEnd int32 // -1 when absent
	minClique              int32
}

// pathSlot is one path's measured result, written by exactly one worker.
type pathSlot struct {
	take        bool
	diam, alpha int
	cliques     []graph.Set
	attachStart graph.Set
	attachEnd   graph.Set
	nodes       graph.Set
	nodeIdxs    []int32
}

// peelScratch is one worker's reusable state: epoch-stamped node and
// clique marks, level-synchronous BFS storage, and the packed-heap MCS
// used for path independence numbers.
type peelScratch struct {
	epoch    int32   // per-path epoch for nodeMark/visited/blocked
	nodeMark []int32 // path-membership marks by snapshot index
	visited  []int32 // sub-MCS visited marks
	blocked  []int32 // Gavril blocked marks
	weight   []int32 // sub-MCS weights (reset via the member list)

	seenEpoch int32 // per-BFS epoch for seen
	seen      []int32

	clEpoch int32
	clMark  []int32 // path-membership marks by clique id

	queue   []int32
	members []int32
	anchors []int32
	order   []int32
	heap    []uint64
	out     []int32
}

func (s *peelScratch) reset(n int) {
	if len(s.nodeMark) < n {
		s.nodeMark = make([]int32, n)
		s.visited = make([]int32, n)
		s.blocked = make([]int32, n)
		s.weight = make([]int32, n)
		s.seen = make([]int32, n)
	}
	if s.epoch == math.MaxInt32 {
		for i := range s.nodeMark {
			s.nodeMark[i] = 0
			s.visited[i] = 0
			s.blocked[i] = 0
		}
		s.epoch = 0
	}
	s.epoch++
}

func (s *peelScratch) nextSeen() int32 {
	if s.seenEpoch == math.MaxInt32 {
		for i := range s.seen {
			s.seen[i] = 0
		}
		s.seenEpoch = 0
	}
	s.seenEpoch++
	return s.seenEpoch
}

func (s *peelScratch) resetCliques(nc int) {
	if len(s.clMark) < nc {
		s.clMark = make([]int32, nc)
	}
	if s.clEpoch == math.MaxInt32 {
		for i := range s.clMark {
			s.clMark[i] = 0
		}
		s.clEpoch = 0
	}
	s.clEpoch++
}

// engine holds the per-run state of the CSR peeling process.
type engine struct {
	ix      *graph.Indexed
	alive   []bool
	nAlive  int
	builder *cliquetree.Builder
	f       cliquetree.CSRForest

	// Binary-path extraction scratch (sequential per iteration).
	isBinary  []bool
	seenCl    []bool
	inComp    []bool
	comp      []int32
	ends      []int32
	pathStore []int32
	paths     []pathIdx
	slots     []pathSlot

	scratches []*peelScratch
}

// Run executes the peeling process on a chordal graph.
func Run(g *graph.Graph, opts Options) (*Result, error) {
	ix := graph.NewIndexed(g)
	n := ix.NumNodes()
	e := &engine{
		ix:      ix,
		alive:   make([]bool, n),
		nAlive:  n,
		builder: cliquetree.NewBuilder(ix),
	}
	for i := range e.alive {
		e.alive[i] = true
	}
	res := &Result{}
	iteration := 0
	for e.nAlive > 0 {
		iteration++
		if opts.MaxIterations > 0 && iteration > opts.MaxIterations {
			break
		}
		if err := e.builder.Build(e.alive, e.nAlive, &e.f); err != nil {
			return nil, fmt.Errorf("peel iteration %d: %w", iteration, err)
		}
		if !opts.NoForests {
			res.Forests = append(res.Forests, cliquetree.ToForest(&e.f, ix.IDs()))
		}
		last := opts.MaxIterations > 0 && iteration == opts.MaxIterations
		layer := e.peelOnce(iteration, opts, last)
		if len(layer.Nodes) == 0 && !last {
			// A nonempty forest always has pendant paths, so this cannot
			// happen; guard against looping forever.
			return nil, fmt.Errorf("peel iteration %d removed nothing", iteration)
		}
		res.Layers = append(res.Layers, *layer)
		for i := range e.slots {
			if !e.slots[i].take {
				continue
			}
			for _, idx := range e.slots[i].nodeIdxs {
				e.alive[idx] = false
			}
			e.nAlive -= len(e.slots[i].nodeIdxs)
		}
		if opts.Trace != nil {
			ev := LayerEvent{
				Iteration:     iteration,
				NodesPeeled:   len(layer.Nodes),
				ForestCliques: e.f.NumCliques,
				Remaining:     e.nAlive,
			}
			for _, p := range layer.Paths {
				if p.Kind == cliquetree.Pendant {
					ev.PendantPaths++
				} else {
					ev.InternalPaths++
				}
			}
			opts.Trace(ev)
		}
	}
	remaining := make(graph.Set, 0, e.nAlive)
	for i := 0; i < n; i++ {
		if e.alive[i] {
			remaining = append(remaining, ix.IDOf(i))
		}
	}
	res.Remaining = graph.NewSet(remaining...)
	return res, nil
}

// peelOnce measures every maximal binary path of the current forest and
// assembles the iteration's layer. The take rules and recorded fields
// mirror the reference peelOnce exactly.
//
//chordalvet:hotpath budget=44 peel workers: path measurement reuses per-worker scratch
func (e *engine) peelOnce(iteration int, opts Options, last bool) *Layer {
	e.extractPaths()
	diamCap := opts.InternalDiameter
	if diamCap < 8 {
		diamCap = 8
	}
	nPaths := len(e.paths)
	if cap(e.slots) < nPaths {
		e.slots = make([]pathSlot, nPaths)
	}
	e.slots = e.slots[:nPaths]
	for i := range e.slots {
		e.slots[i] = pathSlot{}
	}
	workers := resolveWorkers(opts.Workers, nPaths)
	for len(e.scratches) < workers {
		e.scratches = append(e.scratches, &peelScratch{})
	}
	ko := opts.Observer
	if workers <= 1 {
		if nPaths > 0 {
			if ko != nil {
				ko.KernelStart("peel-measure", 1)
				ko.KernelShardStart(0)
			}
			e.measureRange(0, nPaths, e.scratches[0], diamCap, opts, last)
			if ko != nil {
				ko.KernelShardEnd(0, nPaths)
				ko.KernelEnd()
			}
		}
	} else {
		chunk := (nPaths + workers - 1) / workers
		if ko != nil {
			ko.KernelStart("peel-measure", (nPaths+chunk-1)/chunk)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > nPaths {
				hi = nPaths
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int, s *peelScratch) {
				defer wg.Done()
				if ko != nil {
					ko.KernelShardStart(w)
				}
				e.measureRange(lo, hi, s, diamCap, opts, last)
				if ko != nil {
					ko.KernelShardEnd(w, hi-lo)
				}
			}(w, lo, hi, e.scratches[w])
		}
		wg.Wait()
		if ko != nil {
			ko.KernelEnd()
		}
	}
	layer := &Layer{Index: iteration}
	var peeled []graph.ID
	for i := range e.slots {
		slot := &e.slots[i]
		if !slot.take {
			continue
		}
		layer.Paths = append(layer.Paths, PathRecord{
			Cliques:     slot.cliques,
			Kind:        e.paths[i].kind,
			Nodes:       slot.nodes,
			Diameter:    slot.diam,
			Alpha:       slot.alpha,
			AttachStart: slot.attachStart,
			AttachEnd:   slot.attachEnd,
		})
		peeled = append(peeled, slot.nodes...)
	}
	// One sort+dedup over all peeled paths, as in the reference.
	layer.Nodes = graph.NewSet(peeled...)
	return layer
}

// measureRange measures paths [lo, hi) into their slots.
func (e *engine) measureRange(lo, hi int, s *peelScratch, diamCap int, opts Options, last bool) {
	for i := lo; i < hi; i++ {
		e.measurePath(i, s, diamCap, opts, last)
	}
}

// measurePath decides and records one path. The reference computes the
// independence number for every path but only records it on taken paths,
// so this version skips α for internal paths the diameter rule rejects:
// the recorded output is identical.
func (e *engine) measurePath(i int, s *peelScratch, diamCap int, opts Options, last bool) {
	p := &e.paths[i]
	slot := &e.slots[i]
	cliques := e.pathStore[p.off : p.off+p.ln]
	s.reset(e.ix.NumNodes())
	s.resetCliques(e.f.NumCliques)

	// Path membership: the clique set and its node union V_P.
	members := s.members[:0]
	for _, c := range cliques {
		s.clMark[c] = s.clEpoch
		for _, v := range e.f.Clique(c) {
			if s.nodeMark[v] != s.epoch {
				s.nodeMark[v] = s.epoch
				members = append(members, v)
			}
		}
	}
	s.members = members

	slot.diam = e.pathDiameter(cliques, members, s, diamCap)
	take := false
	alphaDone := false
	switch p.kind {
	case cliquetree.Pendant:
		take = true
	case cliquetree.Internal:
		if last && opts.FinalAlpha > 0 {
			slot.alpha = e.alphaOf(members, s)
			alphaDone = true
			take = slot.alpha >= opts.FinalAlpha
		} else {
			take = opts.InternalDiameter > 0 && slot.diam >= opts.InternalDiameter
		}
	}
	if !take {
		return
	}
	if !alphaDone {
		slot.alpha = e.alphaOf(members, s)
	}
	slot.take = true

	// Materialize the record's sets. Snapshot index order is ID order, so
	// filling from ascending index rows yields sorted graph.Sets directly.
	ids := e.ix.IDs()
	slot.cliques = make([]graph.Set, len(cliques))
	for ci, c := range cliques {
		slot.cliques[ci] = idxSet(e.f.Clique(c), ids)
	}
	if p.attachStart >= 0 {
		slot.attachStart = idxSet(e.f.Clique(p.attachStart), ids)
	}
	if p.attachEnd >= 0 {
		slot.attachEnd = idxSet(e.f.Clique(p.attachEnd), ids)
	}

	// Subpath nodes: members whose entire phi row lies on the path.
	nodeIdxs := s.out[:0]
	for _, v := range members {
		all := true
		for _, c := range e.f.PhiRow(v) {
			if s.clMark[c] != s.clEpoch {
				all = false
				break
			}
		}
		if all {
			nodeIdxs = append(nodeIdxs, v)
		}
	}
	sort.Slice(nodeIdxs, func(a, b int) bool { return nodeIdxs[a] < nodeIdxs[b] })
	slot.nodeIdxs = append([]int32(nil), nodeIdxs...)
	slot.nodes = idxSet(slot.nodeIdxs, ids)
	s.out = nodeIdxs[:0]
}

func idxSet(idxs []int32, ids []graph.ID) graph.Set {
	set := make(graph.Set, len(idxs))
	for i, v := range idxs {
		set[i] = ids[v]
	}
	return set
}

// pathDiameter is PathDiameterCapped in index space: a level-synchronous
// BFS over the current (alive) graph from each node of the two end
// cliques. best accumulates across anchors and the early-outs match the
// reference, so the value is identical (it is a pure function of the
// same graph, member set, anchor set, and cap).
func (e *engine) pathDiameter(cliques, members []int32, s *peelScratch, cap int) int {
	first := e.f.Clique(cliques[0])
	lastC := e.f.Clique(cliques[len(cliques)-1])
	// Merge the two ascending rows, deduped: the reference Union.
	anchors := s.anchors[:0]
	ai, bi := 0, 0
	for ai < len(first) || bi < len(lastC) {
		switch {
		case bi >= len(lastC) || (ai < len(first) && first[ai] < lastC[bi]):
			anchors = append(anchors, first[ai])
			ai++
		case ai >= len(first) || lastC[bi] < first[ai]:
			anchors = append(anchors, lastC[bi])
			bi++
		default:
			anchors = append(anchors, first[ai])
			ai++
			bi++
		}
	}
	s.anchors = anchors
	best := 0
	for _, a := range anchors {
		stamp := s.nextSeen()
		reached := 0
		q := append(s.queue[:0], a)
		s.seen[a] = stamp
		if s.nodeMark[a] == s.epoch {
			reached++
		}
		levelStart, levelEnd := 0, 1
		for depth := 0; depth < cap && levelEnd > levelStart && reached < len(members); depth++ {
			for i := levelStart; i < levelEnd; i++ {
				v := q[i]
				for _, u := range e.ix.NeighborIndices(int(v)) {
					if !e.alive[u] || s.seen[u] == stamp {
						continue
					}
					s.seen[u] = stamp
					q = append(q, u)
					if s.nodeMark[u] == s.epoch {
						reached++
						if depth+1 > best {
							best = depth + 1
						}
					}
				}
			}
			levelStart, levelEnd = levelEnd, len(q)
		}
		s.queue = q[:0]
		if reached < len(members) {
			// Some path member is farther than cap from this anchor.
			return cap
		}
		if best >= cap {
			return cap
		}
	}
	return best
}

// alphaOf computes α of the subgraph induced by members: MCS restricted
// to the member set yields a perfect elimination order, then Gavril's
// greedy scan counts a maximum independent set. Both are exact on
// chordal inputs regardless of tie-breaking, and the member subgraph is
// chordal (the forest build verified the alive graph), so the value
// matches the reference's PathIndependenceNumber.
func (e *engine) alphaOf(members []int32, s *peelScratch) int {
	n := e.ix.NumNodes()
	if len(s.order) < len(members) {
		s.order = make([]int32, len(members))
	}
	order := s.order[:len(members)]
	h := s.heap[:0]
	for _, v := range members {
		s.weight[v] = 0
		h = alphaHeapPush(h, uint64(n-1-int(v)))
	}
	stamp := s.epoch
	for i := len(members) - 1; i >= 0; i-- {
		var v int32
		for {
			top := h[0]
			h = alphaHeapPop(h)
			w := int32(top >> 32)
			idx := int32(n-1) - int32(top&0xffffffff)
			if s.visited[idx] == stamp || s.weight[idx] != w {
				continue
			}
			v = idx
			break
		}
		order[i] = v
		s.visited[v] = stamp
		for _, u := range e.ix.NeighborIndices(int(v)) {
			if s.nodeMark[u] != s.epoch || s.visited[u] == stamp {
				continue
			}
			s.weight[u]++
			h = alphaHeapPush(h, uint64(s.weight[u])<<32|uint64(int32(n-1)-u))
		}
	}
	s.heap = h[:0]
	alpha := 0
	for _, v := range order {
		if s.blocked[v] == stamp {
			continue
		}
		alpha++
		s.blocked[v] = stamp
		for _, u := range e.ix.NeighborIndices(int(v)) {
			if s.nodeMark[u] == s.epoch {
				s.blocked[u] = stamp
			}
		}
	}
	return alpha
}

func alphaHeapPush(h []uint64, key uint64) []uint64 {
	h = append(h, key)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] >= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

func alphaHeapPop(h []uint64) []uint64 {
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && h[l] > h[big] {
			big = l
		}
		if r < last && h[r] > h[big] {
			big = r
		}
		if big == i {
			break
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
	return h
}

// extractPaths computes the maximal binary paths of the current forest,
// mirroring Forest.MaximalBinaryPaths/orderPath in index space: the
// degree-≤2 components are discovered from their ascending clique ids,
// linearized from the smallest endpoint, oriented (pendant leaf-first)
// and classified identically, then sorted by smallest clique id.
func (e *engine) extractPaths() {
	nc := e.f.NumCliques
	if cap(e.isBinary) < nc {
		e.isBinary = make([]bool, nc)
		e.seenCl = make([]bool, nc)
		e.inComp = make([]bool, nc)
	}
	e.isBinary = e.isBinary[:nc]
	e.seenCl = e.seenCl[:nc]
	e.inComp = e.inComp[:nc]
	for i := 0; i < nc; i++ {
		e.isBinary[i] = e.f.Deg(int32(i)) <= 2
		e.seenCl[i] = false
		e.inComp[i] = false
	}
	e.paths = e.paths[:0]
	e.pathStore = e.pathStore[:0]
	for start := 0; start < nc; start++ {
		if !e.isBinary[start] || e.seenCl[start] {
			continue
		}
		comp := e.comp[:0]
		comp = append(comp, int32(start))
		e.seenCl[start] = true
		for i := 0; i < len(comp); i++ {
			for _, nb := range e.f.Nbrs(comp[i]) {
				if e.isBinary[nb] && !e.seenCl[nb] {
					e.seenCl[nb] = true
					comp = append(comp, nb)
				}
			}
		}
		e.comp = comp
		e.orderPath(comp)
	}
	sort.Slice(e.paths, func(i, j int) bool { return e.paths[i].minClique < e.paths[j].minClique })
}

// orderPath linearizes one binary component into e.paths/e.pathStore.
func (e *engine) orderPath(comp []int32) {
	for _, c := range comp {
		e.inComp[c] = true
	}
	insideDeg := func(c int32) int {
		d := 0
		for _, nb := range e.f.Nbrs(c) {
			if e.inComp[nb] {
				d++
			}
		}
		return d
	}
	ends := e.ends[:0]
	for _, c := range comp {
		if insideDeg(c) <= 1 {
			ends = append(ends, c)
		}
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
	e.ends = ends
	start := ends[0] // single vertex: its own endpoint (degree 0)

	off := int32(len(e.pathStore))
	prev := int32(-1)
	cur := start
	for {
		e.pathStore = append(e.pathStore, cur)
		next := int32(-1)
		for _, nb := range e.f.Nbrs(cur) {
			if e.inComp[nb] && nb != prev {
				next = nb
				break
			}
		}
		if next == -1 {
			break
		}
		prev, cur = cur, next
	}
	ordered := e.pathStore[off:]

	attachOf := func(c, exclude int32) int32 {
		for _, nb := range e.f.Nbrs(c) {
			if !e.inComp[nb] && nb != exclude {
				return nb
			}
		}
		return -1
	}
	p := pathIdx{off: off, ln: int32(len(ordered))}
	if len(ordered) == 1 {
		// A single binary vertex can attach to zero, one, or two outside
		// vertices; distinguish them so lone leaves stay pendant.
		p.attachStart = attachOf(ordered[0], -1)
		p.attachEnd = attachOf(ordered[0], p.attachStart)
		if p.attachEnd == -1 {
			// At most one attachment: keep it at the end (leaf-first).
			p.attachStart, p.attachEnd = -1, p.attachStart
		}
	} else {
		p.attachStart = attachOf(ordered[0], -1)
		p.attachEnd = attachOf(ordered[len(ordered)-1], -1)
	}
	if p.attachStart != -1 && p.attachEnd != -1 {
		p.kind = cliquetree.Internal
	} else {
		p.kind = cliquetree.Pendant
		// Orient pendant paths leaf-first.
		if p.attachStart != -1 {
			for i, j := 0, len(ordered)-1; i < j; i, j = i+1, j-1 {
				ordered[i], ordered[j] = ordered[j], ordered[i]
			}
			p.attachStart, p.attachEnd = p.attachEnd, p.attachStart
		}
	}
	p.minClique = ordered[0]
	for _, c := range ordered {
		if c < p.minClique {
			p.minClique = c
		}
	}
	for _, c := range comp {
		e.inComp[c] = false
	}
	e.paths = append(e.paths, p)
}
