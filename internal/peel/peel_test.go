package peel

import (
	"math"
	"testing"

	"repro/internal/chordal"
	"repro/internal/cliquetree"
	"repro/internal/figures"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/interval"
)

func TestRunPartitionsAllNodes(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := gen.RandomChordal(80, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, seed)
		res, err := Run(g, Options{InternalDiameter: 6})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Remaining) != 0 {
			t.Fatalf("seed %d: %d nodes never peeled", seed, len(res.Remaining))
		}
		seen := make(map[graph.ID]int)
		total := 0
		for _, layer := range res.Layers {
			for _, v := range layer.Nodes {
				if prev, dup := seen[v]; dup {
					t.Fatalf("seed %d: node %d in layers %d and %d", seed, v, prev, layer.Index)
				}
				seen[v] = layer.Index
				total++
			}
		}
		if total != g.NumNodes() {
			t.Fatalf("seed %d: layers cover %d of %d nodes", seed, total, g.NumNodes())
		}
	}
}

func TestLayerCountLogarithmic(t *testing.T) {
	// Corollary 1 / Lemma 6: at most ⌈log n⌉ iterations (n = forest
	// vertices ≤ graph nodes). Allow the +1 slack of the final cleanup.
	for _, n := range []int{64, 256, 1024} {
		g := gen.RandomChordal(n, gen.ChordalOpts{MaxCliqueSize: 3, AttachFull: 0.2}, 42)
		res, err := Run(g, Options{InternalDiameter: 6})
		if err != nil {
			t.Fatal(err)
		}
		bound := int(math.Ceil(math.Log2(float64(n)))) + 1
		if len(res.Layers) > bound {
			t.Fatalf("n=%d: %d layers > bound %d", n, len(res.Layers), bound)
		}
	}
}

func TestLemma5ForestUpdate(t *testing.T) {
	// Lemma 5: the clique forest of G[U_{i+1}] equals T_i minus the peeled
	// paths. We verify the vertex sets: recomputed forest's cliques =
	// previous forest's cliques minus peeled path cliques.
	g := gen.RandomChordal(60, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 9)
	res, err := Run(g, Options{InternalDiameter: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(res.Forests); i++ {
		prev, next := res.Forests[i], res.Forests[i+1]
		peeled := make(map[string]bool)
		for _, rec := range res.Layers[i].Paths {
			for _, c := range rec.Cliques {
				peeled[setKey(c)] = true
			}
		}
		want := make(map[string]bool)
		for j := 0; j < prev.NumVertices(); j++ {
			key := setKey(prev.Clique(j))
			if !peeled[key] {
				want[key] = true
			}
		}
		got := make(map[string]bool)
		for j := 0; j < next.NumVertices(); j++ {
			got[setKey(next.Clique(j))] = true
		}
		if len(got) != len(want) {
			t.Fatalf("iteration %d: forest has %d cliques, want %d", i+1, len(got), len(want))
		}
		for key := range want {
			if !got[key] {
				t.Fatalf("iteration %d: clique %q missing after removal", i+1, key)
			}
		}
	}
}

func setKey(s graph.Set) string {
	b := make([]byte, 0, len(s)*3)
	for _, v := range s {
		b = append(b, byte(v), byte(v>>8), ',')
	}
	return string(b)
}

func TestLayersAreIntervalGraphs(t *testing.T) {
	// Lemma 7 consequence: each peeled path's node set induces an
	// interval graph, with LayerCliquePath a valid consecutive
	// arrangement.
	for seed := int64(0); seed < 5; seed++ {
		g := gen.RandomChordal(70, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, seed)
		res, err := Run(g, Options{InternalDiameter: 6})
		if err != nil {
			t.Fatal(err)
		}
		for _, layer := range res.Layers {
			for _, rec := range layer.Paths {
				sub := g.InducedSubgraph(rec.Nodes)
				if !chordal.IsChordal(sub) {
					t.Fatalf("seed %d layer %d: path subgraph not chordal", seed, layer.Index)
				}
				path := LayerCliquePath(rec)
				if err := interval.ValidCliquePath(sub, path); err != nil {
					t.Fatalf("seed %d layer %d: %v", seed, layer.Index, err)
				}
			}
		}
	}
}

func TestLemma11NeighborsInHigherLayers(t *testing.T) {
	// Lemma 11: in the graph current at iteration i, every neighbor of a
	// peeled path's node set W lies in a strictly higher layer. Nodes
	// peeled in earlier iterations were already gone; within iteration i,
	// a neighbor in layer i would have to be in the same path's W.
	for seed := int64(0); seed < 5; seed++ {
		g := gen.RandomChordal(70, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.3}, seed)
		res, err := Run(g, Options{InternalDiameter: 6})
		if err != nil {
			t.Fatal(err)
		}
		layerOf := res.NodeLayers()
		for _, layer := range res.Layers {
			for _, rec := range layer.Paths {
				inW := make(map[graph.ID]bool)
				for _, v := range rec.Nodes {
					inW[v] = true
				}
				for _, v := range rec.Nodes {
					for _, u := range g.Neighbors(v) {
						if !inW[u] && layerOf[u] == layer.Index {
							t.Fatalf("seed %d: node %d of a layer-%d path neighbors %d in another layer-%d path",
								seed, v, layer.Index, u, layer.Index)
						}
					}
				}
			}
		}
	}
}

func TestLemma8ConflictsInsideAttachments(t *testing.T) {
	// Lemma 8: a peeled path's outside neighbors live inside the
	// attachment cliques.
	for seed := int64(0); seed < 5; seed++ {
		g := gen.RandomChordal(70, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.3}, seed)
		res, err := Run(g, Options{InternalDiameter: 6})
		if err != nil {
			t.Fatal(err)
		}
		for _, layer := range res.Layers {
			for _, rec := range layer.Paths {
				inW := make(map[graph.ID]bool)
				for _, v := range rec.Nodes {
					inW[v] = true
				}
				boundary := rec.AttachStart.Union(rec.AttachEnd)
				for _, v := range rec.Nodes {
					for _, u := range g.InducedSubgraph(append(rec.Nodes.Clone(), boundary...)).Neighbors(v) {
						_ = u
					}
					for _, u := range g.Neighbors(v) {
						if inW[u] {
							continue
						}
						// Outside neighbors still present at peel time
						// must be inside the attachments. Nodes peeled in
						// earlier iterations are exempt (they were gone).
						if res.NodeLayers()[u] > layer.Index && !boundary.Contains(u) {
							t.Fatalf("seed %d layer %d: outside neighbor %d not in attachments",
								seed, layer.Index, u)
						}
					}
				}
			}
		}
	}
}

func TestTruncatedRun(t *testing.T) {
	g := gen.RandomChordal(100, gen.ChordalOpts{MaxCliqueSize: 3, AttachFull: 0.2}, 4)
	res, err := Run(g, Options{InternalDiameter: 5, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) > 2 {
		t.Fatalf("truncated run produced %d layers", len(res.Layers))
	}
	covered := 0
	for _, l := range res.Layers {
		covered += len(l.Nodes)
	}
	if covered+len(res.Remaining) != g.NumNodes() {
		t.Fatalf("layers (%d) + remaining (%d) != n (%d)", covered, len(res.Remaining), g.NumNodes())
	}
}

func TestFinalAlphaRule(t *testing.T) {
	// With FinalAlpha set, the last iteration peels internal paths by
	// independence number. Build a barbell whose hubs are forced to be
	// degree-3 forest vertices by weight-2 clique intersections:
	// K1 = {1,2,3} with satellite cliques {1,2,7}, {2,3,8}, {1,3,9};
	// a long chain 9-10-...-30-31; K2 = {31,32,33} with satellites
	// {32,33,40}, {31,33,41}. The chain (with {1,3,9} and {30,31}) forms
	// an internal path of large independence number.
	g := graph.New()
	for _, e := range [][2]graph.ID{
		{1, 2}, {2, 3}, {1, 3}, // K1
		{1, 7}, {2, 7}, {2, 8}, {3, 8}, {1, 9}, {3, 9}, // satellites
		{31, 32}, {32, 33}, {31, 33}, // K2
		{32, 40}, {33, 40}, {31, 41}, {33, 41}, // satellites
		{30, 31}, {30, 32}, // chain end joins K2 via the weight-2 clique {30,31,32}
	} {
		g.AddEdge(e[0], e[1])
	}
	for v := graph.ID(9); v < 30; v++ {
		g.AddEdge(v, v+1)
	}
	res, err := Run(g, Options{InternalDiameter: 1 << 30, MaxIterations: 1, FinalAlpha: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) != 1 {
		t.Fatalf("got %d layers", len(res.Layers))
	}
	foundInternal := false
	for _, rec := range res.Layers[0].Paths {
		if rec.Kind == cliquetree.Internal {
			foundInternal = true
			if rec.Alpha < 3 {
				t.Fatalf("internal path peeled with α = %d < 3", rec.Alpha)
			}
		}
	}
	if !foundInternal {
		t.Fatal("expected the long internal path to be peeled by the α rule")
	}
}

func TestFig56Peel(t *testing.T) {
	// Figures 5–6: peeling the Fig-1 graph must, in its first iteration,
	// remove pendant paths; with a small diameter threshold the internal
	// path C6..C10 is peeled, taking exactly nodes {9..14} with it.
	g := figures.Fig1()
	res, err := Run(g, Options{InternalDiameter: 4})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Layers[0]
	var internalRec *PathRecord
	for i, rec := range first.Paths {
		if rec.Kind == cliquetree.Internal {
			if internalRec != nil {
				t.Fatal("more than one internal path in iteration 1")
			}
			internalRec = &first.Paths[i]
		}
	}
	if internalRec == nil {
		t.Fatal("internal path C6..C10 not peeled")
	}
	if !internalRec.Nodes.Equal(figures.Fig5PeeledNodes) {
		t.Fatalf("internal path removed %v, want %v", internalRec.Nodes, figures.Fig5PeeledNodes)
	}
	if len(internalRec.Cliques) != len(figures.Fig5Path) {
		t.Fatalf("internal path has %d cliques, want %d", len(internalRec.Cliques), len(figures.Fig5Path))
	}
}

func TestPendantOnlyAblation(t *testing.T) {
	// DESIGN ablation: without internal-path peeling, a long "barbell"
	// needs many more iterations than with it.
	bar := gen.Path(200)
	bar.AddEdge(0, 300)
	bar.AddEdge(0, 301)
	bar.AddEdge(199, 302)
	bar.AddEdge(199, 303)
	with, err := Run(bar, Options{InternalDiameter: 10})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(bar, Options{InternalDiameter: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(with.Layers) > len(without.Layers) {
		t.Fatalf("internal peeling used %d layers, pendant-only %d",
			len(with.Layers), len(without.Layers))
	}
}
