package peel

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/figures"
	"repro/internal/gen"
	"repro/internal/graph"
)

// resultsEqual compares two peel results field by field: layers (paths
// with cliques, kind, nodes, diameter, alpha, attachments), remaining
// set, forests, and traces when captured.
func resultsEqual(t *testing.T, label string, want, got *Result, wantForests bool) {
	t.Helper()
	if len(got.Layers) != len(want.Layers) {
		t.Fatalf("%s: %d layers, want %d", label, len(got.Layers), len(want.Layers))
	}
	for li := range want.Layers {
		wl, gl := &want.Layers[li], &got.Layers[li]
		if gl.Index != wl.Index {
			t.Fatalf("%s layer %d: index %d vs %d", label, li, gl.Index, wl.Index)
		}
		if !gl.Nodes.Equal(wl.Nodes) {
			t.Fatalf("%s layer %d: nodes %v vs %v", label, li, gl.Nodes, wl.Nodes)
		}
		if len(gl.Paths) != len(wl.Paths) {
			t.Fatalf("%s layer %d: %d paths, want %d", label, li, len(gl.Paths), len(wl.Paths))
		}
		for pi := range wl.Paths {
			wp, gp := &wl.Paths[pi], &gl.Paths[pi]
			if gp.Kind != wp.Kind || gp.Diameter != wp.Diameter || gp.Alpha != wp.Alpha {
				t.Fatalf("%s layer %d path %d: kind/diam/alpha (%v,%d,%d) vs (%v,%d,%d)",
					label, li, pi, gp.Kind, gp.Diameter, gp.Alpha, wp.Kind, wp.Diameter, wp.Alpha)
			}
			if !gp.Nodes.Equal(wp.Nodes) {
				t.Fatalf("%s layer %d path %d: nodes %v vs %v", label, li, pi, gp.Nodes, wp.Nodes)
			}
			if len(gp.Cliques) != len(wp.Cliques) {
				t.Fatalf("%s layer %d path %d: %d cliques, want %d", label, li, pi, len(gp.Cliques), len(wp.Cliques))
			}
			for ci := range wp.Cliques {
				if wp.Cliques[ci].Compare(gp.Cliques[ci]) != 0 {
					t.Fatalf("%s layer %d path %d clique %d: %v vs %v",
						label, li, pi, ci, gp.Cliques[ci], wp.Cliques[ci])
				}
			}
			if !setsEqualNil(wp.AttachStart, gp.AttachStart) || !setsEqualNil(wp.AttachEnd, gp.AttachEnd) {
				t.Fatalf("%s layer %d path %d: attachments (%v,%v) vs (%v,%v)",
					label, li, pi, gp.AttachStart, gp.AttachEnd, wp.AttachStart, wp.AttachEnd)
			}
		}
	}
	if !got.Remaining.Equal(want.Remaining) {
		t.Fatalf("%s: remaining %v vs %v", label, got.Remaining, want.Remaining)
	}
	if wantForests {
		if len(got.Forests) != len(want.Forests) {
			t.Fatalf("%s: %d forests, want %d", label, len(got.Forests), len(want.Forests))
		}
		for fi := range want.Forests {
			wf, gf := want.Forests[fi], got.Forests[fi]
			if gf.NumVertices() != wf.NumVertices() {
				t.Fatalf("%s forest %d: %d cliques, want %d", label, fi, gf.NumVertices(), wf.NumVertices())
			}
			for c := 0; c < wf.NumVertices(); c++ {
				if wf.Clique(c).Compare(gf.Clique(c)) != 0 {
					t.Fatalf("%s forest %d clique %d: %v vs %v", label, fi, c, gf.Clique(c), wf.Clique(c))
				}
				wn, gn := wf.Neighbors(c), gf.Neighbors(c)
				if len(wn) != len(gn) {
					t.Fatalf("%s forest %d clique %d: adjacency %v vs %v", label, fi, c, gn, wn)
				}
				for j := range wn {
					if wn[j] != gn[j] {
						t.Fatalf("%s forest %d clique %d: adjacency %v vs %v", label, fi, c, gn, wn)
					}
				}
			}
		}
	}
}

// setsEqualNil is Set.Equal plus nil/non-nil agreement (a nil attachment
// means "absent" and must stay nil).
func setsEqualNil(a, b graph.Set) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a.Equal(b)
}

func equivalenceCases() map[string]*graph.Graph {
	cases := map[string]*graph.Graph{
		"empty":       graph.New(),
		"single":      gen.Path(1),
		"path":        gen.Path(40),
		"star":        gen.Star(12),
		"complete":    gen.Complete(8),
		"caterpillar": gen.Caterpillar(10, 3),
		"hubtree":     gen.HubTree(3, 4),
		"fig1":        figures.Fig1(),
	}
	for seed := int64(0); seed < 8; seed++ {
		cases[fmt.Sprintf("chordal%d", seed)] = gen.RandomChordal(90, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, seed)
		cases[fmt.Sprintf("ktree%d", seed)] = gen.KTree(60, 3, seed)
		cases[fmt.Sprintf("tree%d", seed)] = gen.Tree(70, seed)
		cases[fmt.Sprintf("subtree%d", seed)] = gen.RandomChordalSubtree(150, 3, 5, seed)
		cases[fmt.Sprintf("interval%d", seed)] = gen.RandomInterval(60, 20, 3, seed)
	}
	return cases
}

func equivalenceOptions() []Options {
	return []Options{
		{InternalDiameter: 6},
		{InternalDiameter: 12},
		{InternalDiameter: 0}, // pendant-only
		{InternalDiameter: 5, MaxIterations: 2},
		{InternalDiameter: 1 << 30, MaxIterations: 1, FinalAlpha: 3},
		{InternalDiameter: 7, MaxIterations: 3, FinalAlpha: 2},
	}
}

// TestCSREngineMatchesReference checks the CSR engine reproduces the
// map-backed reference bit for bit — layers, path records, forests,
// remaining set, and traces — across graph families and option shapes.
func TestCSREngineMatchesReference(t *testing.T) {
	for name, g := range equivalenceCases() {
		for oi, opts := range equivalenceOptions() {
			label := fmt.Sprintf("%s/opt%d", name, oi)
			var wantTrace, gotTrace []LayerEvent
			wopts := opts
			wopts.Trace = func(ev LayerEvent) { wantTrace = append(wantTrace, ev) }
			want, wantErr := runReference(g, wopts)
			gopts := opts
			gopts.Trace = func(ev LayerEvent) { gotTrace = append(gotTrace, ev) }
			got, gotErr := Run(g, gopts)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s: error %v vs %v", label, gotErr, wantErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("%s: error %q vs %q", label, gotErr, wantErr)
				}
				continue
			}
			resultsEqual(t, label, want, got, true)
			if len(gotTrace) != len(wantTrace) {
				t.Fatalf("%s: %d trace events, want %d", label, len(gotTrace), len(wantTrace))
			}
			for i := range wantTrace {
				if gotTrace[i] != wantTrace[i] {
					t.Fatalf("%s trace %d: %+v vs %+v", label, i, gotTrace[i], wantTrace[i])
				}
			}
		}
	}
}

// TestCSREngineNoForests checks the opt-out changes nothing but the
// Forests slice.
func TestCSREngineNoForests(t *testing.T) {
	g := gen.RandomChordalSubtree(200, 3, 5, 7)
	want, err := Run(g, Options{InternalDiameter: 6})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(g, Options{InternalDiameter: 6, NoForests: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Forests) != 0 {
		t.Fatalf("NoForests still produced %d forests", len(got.Forests))
	}
	resultsEqual(t, "noforests", want, got, false)
}

// TestCSREngineWorkerSweep checks bit-identical output for every worker
// count (the per-path slots make sharding invisible).
func TestCSREngineWorkerSweep(t *testing.T) {
	counts := []int{1, 2, 3, runtime.GOMAXPROCS(0) + 2}
	for name, g := range map[string]*graph.Graph{
		"subtree": gen.RandomChordalSubtree(300, 3, 5, 11),
		"chordal": gen.RandomChordal(120, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.4}, 3),
		"trunc":   gen.RandomChordal(120, gen.ChordalOpts{MaxCliqueSize: 3, AttachFull: 0.2}, 5),
	} {
		opts := Options{InternalDiameter: 6}
		if name == "trunc" {
			opts = Options{InternalDiameter: 5, MaxIterations: 2, FinalAlpha: 2}
		}
		base := opts
		base.Workers = 1
		want, err := Run(g, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range counts[1:] {
			o := opts
			o.Workers = w
			got, err := Run(g, o)
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, fmt.Sprintf("%s/workers=%d", name, w), want, got, true)
		}
	}
}
