package peel

import (
	"testing"

	"repro/internal/gen"
)

func BenchmarkPeelLarge(b *testing.B) {
	g := gen.RandomChordal(16384, gen.ChordalOpts{MaxCliqueSize: 4, AttachFull: 0.3}, 16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, Options{InternalDiameter: 12}); err != nil {
			b.Fatal(err)
		}
	}
}
