// Package peel implements the paper's peeling process (Algorithm 1 step 1
// and Algorithm 6 step 1/3): iteratively removing, from the clique forest
// of the remaining graph, all maximal pendant paths plus the maximal
// internal paths that pass a threshold (diameter for coloring,
// independence number in the last MIS iteration), partitioning the node
// set into layers whose induced subgraphs are interval graphs
// (Lemmas 3–7).
package peel

import (
	"fmt"

	"repro/internal/cliquetree"
	"repro/internal/graph"
	"repro/internal/interval"
)

// PathRecord captures one peeled path of L_i with everything later phases
// need: its cliques in path order, its classification, the attachment
// cliques in the surrounding forest (whose nodes land in higher layers and
// are the only possible coloring conflicts, Lemma 8), and its measured
// diameter and independence number.
type PathRecord struct {
	Cliques []graph.Set
	Kind    cliquetree.PathKind
	Nodes   graph.Set // W: nodes whose subtree is a subpath of this path
	// Diameter is the path's diameter in the graph current at peeling
	// time, measured exactly up to the peeling threshold and reported as
	// the threshold when it is at least that large (the decision only
	// needs the comparison).
	Diameter int
	Alpha    int // α(G[V_P]) of the path's full vertex set
	// AttachStart/AttachEnd are the forest vertices adjacent to the
	// path's ends, nil when absent. Pendant paths have at most AttachEnd.
	AttachStart, AttachEnd graph.Set
}

// Layer is one peeling iteration's result.
type Layer struct {
	Index int // 1-based iteration number
	Paths []PathRecord
	Nodes graph.Set // V_i: union of path node sets
}

// Result is the outcome of the peeling process.
type Result struct {
	Layers []Layer
	// Remaining holds U_{last+1}: nodes never peeled (empty for a full
	// run, usually nonempty for a truncated MIS-style run).
	Remaining graph.Set
	// Forests[i] is the clique forest T_{i+1} of G[U_{i+1}] at the start
	// of iteration i+1 (Forests[0] = T_1 = the input's forest).
	Forests []*cliquetree.Forest
}

// LayerEvent is the per-iteration summary handed to Options.Trace after
// each peeling iteration. Every field is a pure function of the input
// graph and options (the peeling process is deterministic), so traces
// are byte-identical across runs.
type LayerEvent struct {
	// Iteration is the 1-based peeling iteration (Layer.Index).
	Iteration int
	// PendantPaths / InternalPaths count the peeled paths by kind.
	PendantPaths  int
	InternalPaths int
	// NodesPeeled is |V_i|, the nodes removed by this iteration.
	NodesPeeled int
	// ForestCliques is the number of cliques in T_i, the clique forest
	// of the graph this iteration peeled from.
	ForestCliques int
	// Remaining is the number of nodes left after this iteration.
	Remaining int
}

// Options configures the peeling process.
type Options struct {
	// InternalDiameter peels maximal internal paths with diameter at
	// least this value (Algorithm 1 uses 3k; Algorithm 6 uses 2d+3).
	// Zero or negative means pendant paths only.
	InternalDiameter int
	// MaxIterations truncates the process (Algorithm 6 runs Θ(log(1/ε))
	// iterations); zero means run until the forest is exhausted.
	MaxIterations int
	// FinalAlpha, when positive and MaxIterations > 0, switches the last
	// iteration's internal-path rule to "independence number at least
	// FinalAlpha" (Algorithm 6's last iteration).
	FinalAlpha int
	// Trace, when non-nil, receives one LayerEvent per iteration, after
	// the layer's nodes are removed. It must not retain references into
	// the run's internal state (events are plain values, so it cannot).
	Trace func(LayerEvent)
	// Workers bounds the path-measurement workers per iteration: 0 uses
	// DefaultWorkers, 1 runs sequentially. The result is bit-identical
	// for every worker count.
	Workers int
	// Observer, when non-nil, receives one "peel-measure" kernel span
	// per iteration: per-worker busy times and path counts from the
	// sharded path-measurement loop. Observability never changes the
	// schedule or the result.
	Observer KernelObserver
	// NoForests skips materializing Result.Forests (map-backed Forest
	// values built only for callers that inspect them; the peeling
	// decisions never read them).
	NoForests bool
}

// KernelObserver receives per-worker spans from the sharded path
// measurement: KernelStart/KernelEnd bracket one iteration's launch from
// the driving goroutine, KernelShardStart/KernelShardEnd bracket one
// worker's range from its goroutine (distinct shard indices, each on
// exactly one goroutine per launch; items is the number of paths the
// shard measured). The kernel never reads the wall clock — the observer
// stamps the callbacks, exactly as with dist engine rounds.
//
// The method set is structurally identical to dist.KernelObserver, on
// purpose: peel stays free of the simulator package, while one
// implementation (obs.Collector) satisfies both interfaces and callers
// holding a dist.RoundObserver convert with a plain type assertion.
type KernelObserver interface {
	KernelStart(kernel string, shards int)
	KernelShardStart(shard int)
	KernelShardEnd(shard, items int)
	KernelEnd()
}

// runReference is the original map-backed implementation of Run, kept as
// the oracle for equivalence tests of the CSR engine in csr.go.
func runReference(g *graph.Graph, opts Options) (*Result, error) {
	res := &Result{}
	remaining := g.Clone()
	iteration := 0
	for remaining.NumNodes() > 0 {
		iteration++
		if opts.MaxIterations > 0 && iteration > opts.MaxIterations {
			break
		}
		forest, err := cliquetree.New(remaining)
		if err != nil {
			return nil, fmt.Errorf("peel iteration %d: %w", iteration, err)
		}
		res.Forests = append(res.Forests, forest)
		last := opts.MaxIterations > 0 && iteration == opts.MaxIterations
		layer, err := peelOnce(remaining, forest, iteration, opts, last)
		if err != nil {
			return nil, err
		}
		if len(layer.Nodes) == 0 && !last {
			// A nonempty forest always has pendant paths, so this cannot
			// happen; guard against looping forever.
			return nil, fmt.Errorf("peel iteration %d removed nothing", iteration)
		}
		res.Layers = append(res.Layers, *layer)
		remaining.RemoveNodes(layer.Nodes)
		if opts.Trace != nil {
			ev := LayerEvent{
				Iteration:     iteration,
				NodesPeeled:   len(layer.Nodes),
				ForestCliques: forest.NumVertices(),
				Remaining:     remaining.NumNodes(),
			}
			for _, p := range layer.Paths {
				if p.Kind == cliquetree.Pendant {
					ev.PendantPaths++
				} else {
					ev.InternalPaths++
				}
			}
			opts.Trace(ev)
		}
	}
	res.Remaining = graph.NewSet(remaining.Nodes()...)
	return res, nil
}

func peelOnce(current *graph.Graph, forest *cliquetree.Forest, iteration int, opts Options, last bool) (*Layer, error) {
	layer := &Layer{Index: iteration}
	var peeled []graph.ID
	for _, p := range forest.MaximalBinaryPaths() {
		rec := PathRecord{Kind: p.Kind}
		for _, ci := range p.Cliques {
			rec.Cliques = append(rec.Cliques, forest.Clique(ci))
		}
		if p.AttachStart != -1 {
			rec.AttachStart = forest.Clique(p.AttachStart)
		}
		if p.AttachEnd != -1 {
			rec.AttachEnd = forest.Clique(p.AttachEnd)
		}
		diamCap := opts.InternalDiameter
		if diamCap < 8 {
			diamCap = 8
		}
		rec.Diameter = forest.PathDiameterCapped(current, p, diamCap)
		alpha, err := forest.PathIndependenceNumber(current, p)
		if err != nil {
			return nil, fmt.Errorf("peel iteration %d: %w", iteration, err)
		}
		rec.Alpha = alpha

		take := false
		switch p.Kind {
		case cliquetree.Pendant:
			take = true
		case cliquetree.Internal:
			if last && opts.FinalAlpha > 0 {
				take = rec.Alpha >= opts.FinalAlpha
			} else {
				take = opts.InternalDiameter > 0 && rec.Diameter >= opts.InternalDiameter
			}
		}
		if !take {
			continue
		}
		rec.Nodes = forest.SubpathNodes(p)
		layer.Paths = append(layer.Paths, rec)
		peeled = append(peeled, rec.Nodes...)
	}
	// One sort+dedup over all peeled paths; equivalent to the pairwise
	// unions it replaces, without the quadratic re-merging.
	layer.Nodes = graph.NewSet(peeled...)
	return layer, nil
}

// LayerCliquePath restricts a peeled path's cliques to its node set W,
// yielding the clique path (consecutive arrangement of maximal cliques)
// of the interval graph G[W]. Empty restrictions and restrictions
// subsumed by a neighbor are dropped.
func LayerCliquePath(rec PathRecord) []graph.Set {
	w := make(map[graph.ID]bool, len(rec.Nodes))
	for _, v := range rec.Nodes {
		w[v] = true
	}
	return interval.RestrictCliquePath(rec.Cliques, func(v graph.ID) bool { return w[v] })
}

// NodeLayers flattens a result into a per-node layer index (1-based).
// Remaining nodes are absent from the map.
func (r *Result) NodeLayers() map[graph.ID]int {
	out := make(map[graph.ID]int)
	for _, layer := range r.Layers {
		for _, v := range layer.Nodes {
			out[v] = layer.Index
		}
	}
	return out
}
