package chordal

import (
	"io"
	"os"
	"sync"
	"testing"

	"repro/internal/colorreduce"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/peel"
)

// Each experiment benchmark regenerates one table/figure from DESIGN.md's
// per-experiment index. The table is printed once per `go test -bench`
// invocation (quick-mode parameters); `cmd/experiments` (without -quick)
// produces the full sweeps recorded in EXPERIMENTS.md.

var printOnce sync.Map

func runExperiment(b *testing.B, id string, fn func(bool) (*exp.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := fn(true)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			tbl.Fprint(os.Stdout)
		} else {
			tbl.Fprint(io.Discard)
		}
	}
}

func BenchmarkE1_Fig12_CliqueForest(b *testing.B) { runExperiment(b, "E1", exp.E1Fig12) }
func BenchmarkE2_Fig34_LocalView(b *testing.B)    { runExperiment(b, "E2", exp.E2Fig34) }
func BenchmarkE3_Fig56_Peeling(b *testing.B)      { runExperiment(b, "E3", exp.E3Fig56) }
func BenchmarkE4_PruningLayers(b *testing.B)      { runExperiment(b, "E4", exp.E4PruningLayers) }
func BenchmarkE5_MVCApproximation(b *testing.B)   { runExperiment(b, "E5", exp.E5MVCApproximation) }
func BenchmarkE6_MVCRounds(b *testing.B)          { runExperiment(b, "E6", exp.E6MVCRounds) }
func BenchmarkE7_ColIntGraph(b *testing.B)        { runExperiment(b, "E7", exp.E7ColIntGraph) }
func BenchmarkE8_Recoloring(b *testing.B)         { runExperiment(b, "E8", exp.E8Recoloring) }
func BenchmarkE9_IntervalMIS(b *testing.B)        { runExperiment(b, "E9", exp.E9IntervalMIS) }
func BenchmarkE10_IntervalMISRounds(b *testing.B) { runExperiment(b, "E10", exp.E10IntervalMISRounds) }
func BenchmarkE11_ChordalMIS(b *testing.B)        { runExperiment(b, "E11", exp.E11ChordalMIS) }
func BenchmarkE12_ChordalMISRounds(b *testing.B)  { runExperiment(b, "E12", exp.E12ChordalMISRounds) }
func BenchmarkE13_LowerBound(b *testing.B)        { runExperiment(b, "E13", exp.E13LowerBound) }
func BenchmarkE14_Baselines(b *testing.B)         { runExperiment(b, "E14", exp.E14Baselines) }
func BenchmarkE15_LocalViewCoherence(b *testing.B) {
	runExperiment(b, "E15", exp.E15LocalViewCoherence)
}

// Micro-benchmarks for the core building blocks.

func BenchmarkCliqueForestConstruction(b *testing.B) {
	g := RandomChordalGraph(2000, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCliqueForest(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColorChordalN2000(b *testing.B) {
	g := RandomChordalGraph(2000, 5, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Color(g, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMISChordalN2000(b *testing.B) {
	g := RandomChordalGraph(2000, 5, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxIndependentSet(g, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMISIntervalN2000(b *testing.B) {
	g, _ := RandomIntervalGraph(2000, 500, 3, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxIndependentSetInterval(g, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColorIntervalN2000(b *testing.B) {
	ivs := gen.RandomIntervals(2000, 500, 3, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ColorInterval(ivs, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactBaselines(b *testing.B) {
	g := RandomChordalGraph(2000, 5, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalColoring(g); err != nil {
			b.Fatal(err)
		}
		if _, err := MaximumIndependentSetExact(g); err != nil {
			b.Fatal(err)
		}
	}
}

// Substrate micro-benchmarks.

func BenchmarkFloodBallCollection(b *testing.B) {
	g := RandomChordalGraph(1000, 4, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dist.CollectBalls(g, 20, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedPruneN256(b *testing.B) {
	g := RandomChordalGraph(256, 4, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DistributedPrune(g, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinialThreeColoring(b *testing.B) {
	g := gen.Path(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := colorreduce.ThreeColorChain(g, 2000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeelingN4096(b *testing.B) {
	g := RandomChordalGraph(4096, 4, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := peel.Run(g, peel.Options{InternalDiameter: 12}); err != nil {
			b.Fatal(err)
		}
	}
}
