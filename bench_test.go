package chordal

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/colorreduce"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/peel"
)

// Each experiment benchmark regenerates one table/figure from DESIGN.md's
// per-experiment index. The table is printed once per `go test -bench`
// invocation (quick-mode parameters); `cmd/experiments` (without -quick)
// produces the full sweeps recorded in EXPERIMENTS.md.

var printOnce sync.Map

func runExperiment(b *testing.B, id string, fn func(bool) (*exp.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := fn(true)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			tbl.Fprint(os.Stdout)
		} else {
			tbl.Fprint(io.Discard)
		}
	}
}

func BenchmarkE1_Fig12_CliqueForest(b *testing.B) { runExperiment(b, "E1", exp.E1Fig12) }
func BenchmarkE2_Fig34_LocalView(b *testing.B)    { runExperiment(b, "E2", exp.E2Fig34) }
func BenchmarkE3_Fig56_Peeling(b *testing.B)      { runExperiment(b, "E3", exp.E3Fig56) }
func BenchmarkE4_PruningLayers(b *testing.B)      { runExperiment(b, "E4", exp.E4PruningLayers) }
func BenchmarkE5_MVCApproximation(b *testing.B)   { runExperiment(b, "E5", exp.E5MVCApproximation) }
func BenchmarkE6_MVCRounds(b *testing.B)          { runExperiment(b, "E6", exp.E6MVCRounds) }
func BenchmarkE7_ColIntGraph(b *testing.B)        { runExperiment(b, "E7", exp.E7ColIntGraph) }
func BenchmarkE8_Recoloring(b *testing.B)         { runExperiment(b, "E8", exp.E8Recoloring) }
func BenchmarkE9_IntervalMIS(b *testing.B)        { runExperiment(b, "E9", exp.E9IntervalMIS) }
func BenchmarkE10_IntervalMISRounds(b *testing.B) { runExperiment(b, "E10", exp.E10IntervalMISRounds) }
func BenchmarkE11_ChordalMIS(b *testing.B)        { runExperiment(b, "E11", exp.E11ChordalMIS) }
func BenchmarkE12_ChordalMISRounds(b *testing.B)  { runExperiment(b, "E12", exp.E12ChordalMISRounds) }
func BenchmarkE13_LowerBound(b *testing.B)        { runExperiment(b, "E13", exp.E13LowerBound) }
func BenchmarkE14_Baselines(b *testing.B)         { runExperiment(b, "E14", exp.E14Baselines) }
func BenchmarkE15_LocalViewCoherence(b *testing.B) {
	runExperiment(b, "E15", exp.E15LocalViewCoherence)
}

// Micro-benchmarks for the core building blocks.

func BenchmarkCliqueForestConstruction(b *testing.B) {
	g := RandomChordalGraph(2000, 5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCliqueForest(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColorChordalN2000(b *testing.B) {
	g := RandomChordalGraph(2000, 5, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Color(g, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMISChordalN2000(b *testing.B) {
	g := RandomChordalGraph(2000, 5, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxIndependentSet(g, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMISIntervalN2000(b *testing.B) {
	g, _ := RandomIntervalGraph(2000, 500, 3, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MaxIndependentSetInterval(g, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColorIntervalN2000(b *testing.B) {
	ivs := gen.RandomIntervals(2000, 500, 3, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ColorInterval(ivs, 0.25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactBaselines(b *testing.B) {
	g := RandomChordalGraph(2000, 5, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalColoring(g); err != nil {
			b.Fatal(err)
		}
		if _, err := MaximumIndependentSetExact(g); err != nil {
			b.Fatal(err)
		}
	}
}

// Substrate micro-benchmarks.

func BenchmarkFloodBallCollection(b *testing.B) {
	g := RandomChordalGraph(1000, 4, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dist.CollectBalls(g, 20, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedPruneN256(b *testing.B) {
	g := RandomChordalGraph(256, 4, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DistributedPrune(g, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedPruneWorkers sweeps the decide kernel's worker
// count on the N256 workload; workers=1 is the sequential schedule the
// parallel shards must match bit-for-bit (see internal/core/decide.go).
func BenchmarkDistributedPruneWorkers(b *testing.B) {
	g := RandomChordalGraph(256, 4, 8)
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			spec := core.PruneSpec{DiamThreshold: 9, Radius: 30, DecideWorkers: w}
			for i := 0; i < b.N; i++ {
				if _, err := core.DistributedPruneSpec(g, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLinialThreeColoring(b *testing.B) {
	g := gen.Path(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := colorreduce.ThreeColorChain(g, 2000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPeelingN4096(b *testing.B) {
	g := RandomChordalGraph(4096, 4, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := peel.Run(g, peel.Options{InternalDiameter: 12}); err != nil {
			b.Fatal(err)
		}
	}
}

// CSR-takeover stage benchmarks (DESIGN.md "CSR takeover"): the peeling,
// correction, and MIS stages at n=100k, and the full (1+ε) coloring+MIS
// pipeline at 20k (CI smoke) and million-node scale. The large instances
// come from gen.RandomChordalSubtree, the linear-time subtree-intersection
// generator, and are cached across benchmarks of one invocation.

var benchInstances sync.Map

// subtreeGraph returns the cached n-node benchmark instance, generating
// it on first use under a generation-time budget: the generator is
// O(n+m), so even the million-node instance must come up in seconds —
// if generation blows the budget, the benchmark setup itself has
// regressed and the run fails loudly instead of silently measuring it.
func subtreeGraph(b *testing.B, n int, seed int64) *graph.Graph {
	b.Helper()
	key := fmt.Sprintf("subtree/%d/%d", n, seed)
	if g, ok := benchInstances.Load(key); ok {
		return g.(*graph.Graph)
	}
	start := time.Now()
	g := gen.RandomChordalSubtree(n, 3, 6, seed)
	if elapsed := time.Since(start); elapsed > time.Minute {
		b.Fatalf("instance generation budget exceeded: n=%d took %v (budget 1m)", n, elapsed)
	}
	benchInstances.Store(key, g)
	return g
}

func BenchmarkPeelingN100k(b *testing.B) {
	g := subtreeGraph(b, 100_000, 61)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := peel.Run(g, peel.Options{InternalDiameter: 12}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMISStageN100k(b *testing.B) {
	g := subtreeGraph(b, 100_000, 61)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MISChordal(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// correctionInputs builds a deterministic correction-phase workload on a
// large-diameter chordal graph (the E4 hub tree: radius-(k+5) finality
// floods stay local, as in the real pipeline where Lemma 10 bounds the
// correction horizon). Layers come from a real peel; each node's parent
// is its smallest higher-layer neighbor, matching the Definition-1
// parent's shape.
func correctionInputs(b *testing.B, g *graph.Graph) (map[graph.ID]int, map[graph.ID]graph.ID, map[graph.ID]int) {
	b.Helper()
	peeled, err := peel.Run(g, peel.Options{InternalDiameter: 12})
	if err != nil {
		b.Fatal(err)
	}
	layer := peeled.NodeLayers()
	parent := make(map[graph.ID]graph.ID)
	colors := make(map[graph.ID]int)
	for _, v := range g.Nodes() {
		colors[v] = int(v) % 5
		best := graph.ID(-1)
		for _, u := range g.Neighbors(v) {
			if layer[u] > layer[v] && (best < 0 || u < best) {
				best = u
			}
		}
		if best >= 0 {
			parent[v] = best
		}
	}
	return layer, parent, colors
}

func BenchmarkCorrectionPhaseN100k(b *testing.B) {
	g := gen.HubTree(11, 20) // ~98k nodes, diameter ≈ depth×chainLen
	layer, parent, colors := correctionInputs(b, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunCorrectionPhase(g, layer, parent, colors, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPipeline(b *testing.B, g *graph.Graph) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ColorChordal(g, 0.5); err != nil {
			b.Fatal(err)
		}
		if _, err := core.MISChordal(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineN20k is the CI-sized smoke variant of the million-node
// pipeline benchmark (make bench-smoke).
func BenchmarkPipelineN20k(b *testing.B) { benchPipeline(b, subtreeGraph(b, 20_000, 42)) }

// BenchmarkPipelineN20kMetrics is the -metrics A/B counterpart of
// BenchmarkPipelineN20k: the same workload with a deep-metrics collector
// attached (kernel spans, phase timelines, mem snapshots, trace encoding
// to io.Discard). The ns/op delta against the nil-observer run above is
// the total cost of observing the pipeline; the acceptance bar is <5%.
func BenchmarkPipelineN20kMetrics(b *testing.B) {
	g := subtreeGraph(b, 20_000, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := obs.NewCollector()
		c.SetTrace(io.Discard)
		c.SetMemStats(true)
		c.SetPhase("color")
		if _, err := core.ColorChordalObserved(g, 0.5, c); err != nil {
			b.Fatal(err)
		}
		c.SetPhase("mis")
		if _, err := core.MISChordalWithOptions(g, 0.5, core.ChordalMISOptions{Observer: c}); err != nil {
			b.Fatal(err)
		}
		if err := c.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineN1M is the headline workload: the full (1+ε)
// coloring + MIS pipeline on a million-node random chordal graph.
func BenchmarkPipelineN1M(b *testing.B) { benchPipeline(b, subtreeGraph(b, 1_000_000, 42)) }

// broadcastProtocol is a minimal fixed-round protocol for engine
// benchmarks: every node broadcasts its ID each round and sums its inbox,
// so the measured cost is the engine's (scheduling, delivery, inbox
// reuse) rather than the protocol's.
type broadcastProtocol struct {
	id            int64
	rounds, limit int
	sum           int64
}

func (p *broadcastProtocol) Init(ctx *dist.Context) { ctx.Broadcast(p.id) }
func (p *broadcastProtocol) Round(ctx *dist.Context, inbox []dist.Message) {
	if p.rounds >= p.limit {
		return
	}
	p.rounds++
	for _, m := range inbox {
		p.sum += m.Payload.(int64)
	}
	if p.rounds < p.limit {
		ctx.Broadcast(p.id)
	}
}
func (p *broadcastProtocol) Done() bool  { return p.rounds >= p.limit }
func (p *broadcastProtocol) Output() any { return p.sum }

// BenchmarkEngineRound measures the engine's per-round overhead at
// increasing scale; ns/op is a full 8-round run on the given graph, with
// the snapshot taken outside the timer.
func BenchmarkEngineRound(b *testing.B) {
	const rounds = 8
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := RandomChordalGraph(n, 4, 10)
			ix := graph.NewIndexed(g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := dist.NewEngineIndexed(ix, func(v graph.ID) dist.Protocol {
					return &broadcastProtocol{id: int64(v), limit: rounds}
				})
				if _, err := eng.Run(rounds + 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFloodRadius sweeps the knowledge radius at n=1000: ball sizes
// (and so flood volume) grow rapidly with the radius until they saturate
// at the component size.
func BenchmarkFloodRadius(b *testing.B) {
	g := RandomChordalGraph(1000, 4, 7)
	for _, radius := range []int{2, 5, 10, 20} {
		b.Run(fmt.Sprintf("r=%d", radius), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := dist.CollectBalls(g, radius, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFloodN100k is the scale target: full-information flooding on a
// 10^5-node chordal graph (map-dedup path, since n exceeds the bitmap
// threshold). The graph is a random tree — chordal, bounded degree — so
// radius-4 balls stay small; on hub-heavy generators full-information
// flooding inherently moves Σdeg² records and is not a 1x-mode workload.
func BenchmarkFloodN100k(b *testing.B) {
	g := gen.Tree(100000, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dist.CollectBalls(g, 4, nil); err != nil {
			b.Fatal(err)
		}
	}
}
