#!/bin/sh
# lintdiff.sh — fail when chordalvet findings drift from the committed
# baseline. The baseline for a clean tree is the literal JSON array [],
# so any new finding (or any silently vanished suppression) shows up as
# a diff hunk with file, line, analyzer, and message.
#
# Usage: scripts/lintdiff.sh [baseline]     (default: lint-baseline.json)
#
# To accept a deliberate change, regenerate the baseline and commit it:
#   go run ./cmd/chordalvet -json ./... > lint-baseline.json
set -eu

cd "$(dirname "$0")/.."
base="${1:-lint-baseline.json}"

if [ ! -f "$base" ]; then
    echo "lintdiff: baseline $base not found" >&2
    exit 2
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# chordalvet exits 1 when findings exist; the diff against the baseline
# decides pass/fail here, so tolerate that exit code (but not loader
# failures, which exit 2).
set +e
go run ./cmd/chordalvet -json ./... >"$tmp"
rc=$?
set -e
if [ "$rc" -gt 1 ]; then
    echo "lintdiff: chordalvet failed to run (exit $rc)" >&2
    exit "$rc"
fi

if ! diff -u "$base" "$tmp"; then
    echo "" >&2
    echo "lintdiff: findings differ from $base" >&2
    echo "lintdiff: if the change is deliberate, refresh the baseline:" >&2
    echo "    go run ./cmd/chordalvet -json ./... > $base" >&2
    exit 1
fi
echo "lintdiff: findings match $base"
