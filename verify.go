package chordal

import (
	"repro/internal/graph"
	"repro/internal/verify"
)

func verifyColoring(g *graph.Graph, colors map[graph.ID]int) (int, error) {
	return verify.Coloring(g, colors)
}

func verifyIndependentSet(g *graph.Graph, is graph.Set) error {
	return verify.IndependentSet(g, is)
}
